"""Span recording: the tracing half of the observability layer.

A :class:`Span` is one named, categorised interval on a *track* (a
worker process/thread, the driver, or a task id) with free-form
attributes.  The :class:`TraceRecorder` collects finished spans from
any thread under a lock; spans produced inside forked task workers are
buffered in the task outcome / :class:`~repro.mapreduce.job.TaskContext`
side-effect channel and stitched back by the parent via
:meth:`TraceRecorder.ingest`.

Timestamps are raw ``time.perf_counter()`` readings.  On every platform
we support, ``perf_counter`` is a system-wide monotonic clock, so
readings taken inside a forked worker are directly comparable with the
parent's and exporters only need to subtract the recorder's ``epoch``.

The disabled path is a shared :data:`NULL_RECORDER` whose ``span()``
returns one preallocated no-op context manager — no per-call
allocation, no clock reads — so instrumented code can stay in place
unconditionally.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry


class Span:
    """One finished interval: name, category, [start, end), attributes."""

    __slots__ = ("name", "category", "start", "end", "track", "depth", "attrs")

    def __init__(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        track: str = "",
        depth: int = 0,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.category = category
        #: Raw perf_counter readings; subtract the recorder epoch to plot.
        self.start = start
        self.end = end
        #: Rendering lane (worker "pid/thread", "driver", or a task id).
        self.track = track
        #: Nesting level within the track at record time.
        self.depth = depth
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        # A span stitched in from a dead worker may have no end time
        # (the process was gone before it could close); report zero
        # duration rather than poisoning every aggregate with None.
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self, epoch: float = 0.0) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cat": self.category,
            "start": self.start - epoch,
            "end": self.end - epoch if self.end is not None else None,
            "track": self.track,
            "depth": self.depth,
            "attrs": self.attrs,
        }

    # Spans cross the fork boundary inside pickled task outcomes.
    def __getstate__(self):
        return (self.name, self.category, self.start, self.end, self.track,
                self.depth, self.attrs)

    def __setstate__(self, state):
        (self.name, self.category, self.start, self.end, self.track,
         self.depth, self.attrs) = state

    def __repr__(self) -> str:
        return (
            f"Span({self.name}, {self.category}, "
            f"{self.duration * 1e3:.3f} ms on {self.track!r})"
        )


class _ActiveSpan:
    """Context manager for one in-flight span."""

    __slots__ = ("_recorder", "name", "category", "track", "attrs", "start")

    def __init__(self, recorder: "TraceRecorder", name: str, category: str,
                 track: Optional[str], attrs: Dict[str, Any]):
        self._recorder = recorder
        self.name = name
        self.category = category
        self.track = track
        self.attrs = attrs
        self.start = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes while the span is still open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._recorder._open_stack().append(self)
        self.start = self._recorder.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        recorder = self._recorder
        end = recorder.now()
        stack = recorder._open_stack()
        depth = max(0, len(stack) - 1)
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        recorder._append(
            Span(
                self.name, self.category, self.start, end,
                track=self.track or recorder._default_track(),
                depth=depth, attrs=self.attrs,
            )
        )
        return False


class _NullSpan:
    """Shared do-nothing span for the disabled recorder."""

    __slots__ = ()
    name = ""
    category = ""
    start = 0.0
    end = 0.0
    duration = 0.0

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Collects spans and metrics for one run.

    Thread-safe: spans finish under a lock, nesting depth is tracked
    per thread.  Process-safe by construction: forked workers never
    touch the recorder — their spans ride back in pickled task
    outcomes and are stitched in with :meth:`ingest`.
    """

    enabled = True

    def __init__(self, trace_tasks: bool = True,
                 sample_interval: float = 0.0):
        self.epoch = time.perf_counter()
        #: Wall-clock instant matching ``epoch``, for report headers.
        self.wall_epoch = time.time()
        #: Whether the engine should measure per-task phase timings.
        self.trace_tasks = trace_tasks
        #: Worker resource-sampling interval in seconds (0 = off); the
        #: engine forwards it to the executors, whose workers run a
        #: :class:`~repro.obs.sampler.ResourceSampler` per task attempt.
        self.sample_interval = sample_interval
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._local = threading.local()

    # -- recording -----------------------------------------------------------
    def now(self) -> float:
        return time.perf_counter()

    def span(self, name: str, category: str = "span",
             track: Optional[str] = None, **attrs: Any) -> _ActiveSpan:
        """Open a nested span; use as a context manager."""
        return _ActiveSpan(self, name, category, track, attrs)

    def ingest(self, spans: Iterable[Span]) -> None:
        """Stitch in spans recorded elsewhere (e.g. a forked worker)."""
        with self._lock:
            self._spans.extend(spans)

    def _append(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- reading -------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Snapshot of finished spans, ordered by start time."""
        with self._lock:
            spans = list(self._spans)
        spans.sort(
            key=lambda span: (
                span.start, span.end if span.end is not None else span.start
            )
        )
        return spans

    def horizon(self) -> float:
        """Seconds from epoch to the latest span end (0 when empty).

        Endless spans (ingested from a dead worker) contribute their
        start time, so they can never stretch the horizon to None.
        """
        with self._lock:
            if not self._spans:
                return 0.0
            return max(
                span.end if span.end is not None else span.start
                for span in self._spans
            ) - self.epoch

    def category_totals(self) -> Dict[str, float]:
        """Summed span duration per category."""
        totals: Dict[str, float] = {}
        for span in self.spans():
            totals[span.category] = totals.get(span.category, 0.0) + \
                span.duration
        return totals

    def phase_totals(self) -> Dict[str, float]:
        """Summed duration of task-phase spans, keyed by phase name."""
        totals: Dict[str, float] = {}
        for span in self.spans():
            if span.category == "phase":
                totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    # -- internals -----------------------------------------------------------
    def _open_stack(self) -> List[_ActiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _default_track(self) -> str:
        return f"pid{os.getpid()}/{threading.current_thread().name}"

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._spans)
        return f"TraceRecorder({count} spans)"


class NullRecorder:
    """Recorder stand-in for disabled observability.

    Every operation is a no-op against shared singletons; the hot path
    pays one attribute load and one method call, with no allocation.
    """

    enabled = False
    trace_tasks = False
    sample_interval = 0.0
    epoch = 0.0
    wall_epoch = 0.0
    metrics = NULL_METRICS

    __slots__ = ()

    def now(self) -> float:
        return 0.0

    def span(self, name: str, category: str = "span",
             track: Optional[str] = None, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def ingest(self, spans: Iterable[Span]) -> None:
        pass

    def spans(self) -> List[Span]:
        return []

    def horizon(self) -> float:
        return 0.0

    def category_totals(self) -> Dict[str, float]:
        return {}

    def phase_totals(self) -> Dict[str, float]:
        return {}

    def __repr__(self) -> str:
        return "NullRecorder()"


NULL_RECORDER = NullRecorder()


@dataclass(frozen=True)
class ObsConfig:
    """Frozen observability configuration, the ExecutionPolicy sibling.

    ``enabled`` turns the whole layer on; ``trace_tasks`` additionally
    measures per-task phase timings inside task bodies (the only
    instrumentation that costs clock reads on the task hot path).
    ``sample_interval`` > 0 additionally runs the worker resource
    sampler (:mod:`repro.obs.sampler`) at that many seconds per sample,
    yielding CPU/RSS/IO/ctx-switch time-series per worker.
    """

    enabled: bool = False
    trace_tasks: bool = True
    sample_interval: float = 0.0

    def build_recorder(self):
        """A fresh recorder per run, or the shared null recorder."""
        if not self.enabled:
            return NULL_RECORDER
        return TraceRecorder(
            trace_tasks=self.trace_tasks,
            sample_interval=self.sample_interval,
        )
