"""Self-contained HTML performance report.

Renders one traced run — spans, phase totals, straggler analytics,
worker cost, and the resource sampler's time-series — into a single
HTML file with inline SVG (no external assets, no scripts), so the
artifact a CI job uploads opens anywhere and diffs cleanly.

Sections mirror the paper's figures: a per-track span timeline (Fig 7
task progress), per-phase utilization strips (Fig 10), a straggler
table, and per-worker resource sparklines (the continuous-observation
methodology the study is built on).
"""

from __future__ import annotations

import html
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.analysis import (
    MAD_THRESHOLD,
    analyze,
    phase_timeline,
    resource_series,
    worker_cost_summary,
)

#: Fixed category palette; unknown categories hash into it.
_PALETTE = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)

_CATEGORY_COLORS = {
    "job": "#4e79a7",
    "round": "#b07aa1",
    "wave": "#9c755f",
    "phase": "#59a14f",
    "map-task": "#f28e2b",
    "reduce-task": "#e15759",
    "speculation": "#edc948",
    "backup": "#ff9da7",
}


def _color(category: str) -> str:
    color = _CATEGORY_COLORS.get(category)
    if color is None:
        color = _PALETTE[hash(category) % len(_PALETTE)]
    return color


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    return f"{seconds * 1e3:.1f} ms"


def _fmt_bytes(count: float) -> str:
    count = float(count or 0)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return f"{count:.0f} {unit}" if unit == "B" \
                else f"{count:.1f} {unit}"
        count /= 1024
    return f"{count:.1f} GiB"


def _timeline_svg(recorder, width: int = 900, lane_height: int = 14,
                  max_lanes: int = 80) -> str:
    """Per-track span timeline as one inline SVG (Fig 7 shape)."""
    spans = recorder.spans()
    horizon = recorder.horizon()
    if not spans or horizon <= 0:
        return "<p>(no spans recorded)</p>"
    epoch = recorder.epoch
    lanes: Dict[str, int] = {}
    for span in spans:
        if span.track not in lanes:
            lanes[span.track] = len(lanes)
    dropped = 0
    if len(lanes) > max_lanes:
        keep = dict(list(lanes.items())[:max_lanes])
        dropped = len(lanes) - max_lanes
        lanes = keep
    label_width = 180
    height = len(lanes) * lane_height + 20
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{label_width + width + 10}" height="{height}" '
        f'font-family="monospace" font-size="10">'
    ]
    for track, lane in lanes.items():
        y = lane * lane_height
        parts.append(
            f'<text x="2" y="{y + lane_height - 3}" '
            f'fill="#555">{_esc(track[:28])}</text>'
        )
        parts.append(
            f'<line x1="{label_width}" y1="{y + lane_height}" '
            f'x2="{label_width + width}" y2="{y + lane_height}" '
            f'stroke="#eee"/>'
        )
    for span in spans:
        lane = lanes.get(span.track)
        if lane is None:
            continue
        x = label_width + (span.start - epoch) / horizon * width
        w = max(span.duration / horizon * width, 0.5)
        y = lane * lane_height + 1
        title = (
            f"{span.name} [{span.category}] "
            f"{_fmt_seconds(span.duration)}"
        )
        parts.append(
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{lane_height - 3}" fill="{_color(span.category)}" '
            f'fill-opacity="0.85"><title>{_esc(title)}</title></rect>'
        )
    axis_y = len(lanes) * lane_height + 12
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = label_width + frac * width
        parts.append(
            f'<text x="{x:.0f}" y="{axis_y}" fill="#888" '
            f'text-anchor="middle">{horizon * frac:.2f}s</text>'
        )
    parts.append("</svg>")
    if dropped:
        parts.append(f"<p>({dropped} additional tracks not shown)</p>")
    legend = " ".join(
        f'<span style="color:{_color(c)}">&#9632; {_esc(c)}</span>'
        for c in sorted({span.category for span in spans})
    )
    return f"{''.join(parts)}<p>{legend}</p>"


def _utilization_svg(timeline: Dict[str, Any], width: int = 900,
                     row_height: int = 22) -> str:
    """Per-phase concurrency strips (the Fig 10 utilization view)."""
    phases = timeline.get("phases") or {}
    if not phases:
        return "<p>(no phase spans recorded)</p>"
    samples = timeline["samples"]
    cell = width / samples
    height = len(phases) * row_height + 16
    label_width = 90
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{label_width + width + 10}" height="{height}" '
        f'font-family="monospace" font-size="10">'
    ]
    for row, (name, counts) in enumerate(sorted(phases.items())):
        peak = max(max(counts), 1)
        y = row * row_height
        parts.append(
            f'<text x="2" y="{y + row_height - 8}" fill="#555">'
            f'{_esc(name)} (peak {peak})</text>'
        )
        for index, count in enumerate(counts):
            if count <= 0:
                continue
            opacity = 0.15 + 0.85 * (count / peak)
            parts.append(
                f'<rect x="{label_width + index * cell:.2f}" y="{y + 2}" '
                f'width="{cell:.2f}" height="{row_height - 6}" '
                f'fill="#4e79a7" fill-opacity="{opacity:.2f}">'
                f'<title>{_esc(name)}: {count} active</title></rect>'
            )
    axis_y = len(phases) * row_height + 12
    horizon = timeline["horizon"]
    for frac in (0.0, 0.5, 1.0):
        x = label_width + frac * width
        parts.append(
            f'<text x="{x:.0f}" y="{axis_y}" fill="#888" '
            f'text-anchor="middle">{horizon * frac:.2f}s</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _sparkline(values: List[float], width: int = 220,
               height: int = 28) -> str:
    """One series as a tiny inline SVG polyline."""
    if not values:
        return "<span>(empty)</span>"
    top = max(values)
    bottom = min(values)
    spread = (top - bottom) or 1.0
    step = width / max(len(values) - 1, 1)
    points = " ".join(
        f"{index * step:.1f},"
        f"{height - 2 - (value - bottom) / spread * (height - 4):.1f}"
        for index, value in enumerate(values)
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}"><polyline points="{points}" fill="none" '
        f'stroke="#4e79a7" stroke-width="1.2"/></svg>'
    )


def _series_value_label(name: str, value: float) -> str:
    if "bytes" in name and "per_s" not in name:
        return _fmt_bytes(value)
    if "percent" in name:
        return f"{value:.0f}%"
    if "per_s" in name:
        return f"{value:,.0f}/s"
    return f"{value:g}"


def render_html_report(
    recorder,
    histories: Optional[Iterable[Tuple[str, Any]]] = None,
    title: str = "repro performance report",
    threshold: float = MAD_THRESHOLD,
    extra_meta: Optional[Dict[str, Any]] = None,
) -> str:
    """The whole report as one self-contained HTML string."""
    histories = list(histories or [])
    bundle = analyze(recorder, histories, threshold)
    cost = bundle["worker_cost"]
    started = (
        time.strftime("%Y-%m-%d %H:%M:%S",
                      time.localtime(recorder.wall_epoch))
        if recorder.wall_epoch else "(untraced)"
    )
    meta_rows = {
        "captured": started,
        "wall": _fmt_seconds(recorder.horizon()),
        "spans": len(recorder.spans()),
        "workers seen": cost["worker_count"],
        "busy worker-seconds": f"{cost['busy_worker_seconds']:.3f}",
        "paid worker-seconds": f"{cost['paid_worker_seconds']:.3f}",
        "worker utilization": f"{cost['utilization'] * 100:.1f}%",
        "effective parallelism": f"{cost['parallelism']:.2f}x",
    }
    meta_rows.update(extra_meta or {})

    out: List[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        "<style>",
        "body{font-family:system-ui,sans-serif;margin:24px;color:#222}",
        "h1{font-size:20px}h2{font-size:16px;margin-top:28px;"
        "border-bottom:1px solid #ddd;padding-bottom:4px}",
        "table{border-collapse:collapse;font-size:13px}",
        "td,th{border:1px solid #ddd;padding:3px 8px;text-align:right}",
        "th{background:#f5f5f5}td:first-child,th:first-child"
        "{text-align:left}",
        ".meta td{border:none;padding:1px 12px 1px 0;text-align:left}",
        ".ok{color:#2a7}.bad{color:#c33}",
        "</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        "<table class='meta'>",
    ]
    for key, value in meta_rows.items():
        out.append(f"<tr><td>{_esc(key)}</td><td><b>{_esc(value)}</b>"
                   "</td></tr>")
    out.append("</table>")

    out.append("<h2>Span timeline</h2>")
    out.append(_timeline_svg(recorder))

    out.append("<h2>Per-phase utilization</h2>")
    out.append(_utilization_svg(bundle["phase_timeline"]))

    phase_totals = recorder.phase_totals()
    out.append("<h2>Phase totals</h2>")
    if phase_totals:
        grand = sum(phase_totals.values()) or 1.0
        out.append("<table><tr><th>phase</th><th>total</th>"
                   "<th>share</th></tr>")
        for name, total in sorted(phase_totals.items(),
                                  key=lambda item: -item[1]):
            out.append(
                f"<tr><td>{_esc(name)}</td>"
                f"<td>{_fmt_seconds(total)}</td>"
                f"<td>{total / grand * 100:.1f}%</td></tr>"
            )
        out.append("</table>")
    else:
        out.append("<p>(no phase spans recorded)</p>")

    out.append("<h2>Queue wait vs run time</h2>")
    if bundle["queue_run"]:
        out.append(
            "<table><tr><th>round</th><th>wave</th><th>tasks</th>"
            "<th>queued</th><th>run</th><th>queue share</th></tr>"
        )
        for label, decomposition in bundle["queue_run"].items():
            for kind in ("map", "reduce"):
                row = decomposition[kind]
                if not row["tasks"]:
                    continue
                out.append(
                    f"<tr><td>{_esc(label)}</td><td>{kind}</td>"
                    f"<td>{row['tasks']}</td>"
                    f"<td>{_fmt_seconds(row['queued_seconds'])}</td>"
                    f"<td>{_fmt_seconds(row['run_seconds'])}</td>"
                    f"<td>{row['queue_fraction'] * 100:.1f}%</td></tr>"
                )
        out.append("</table>")
    else:
        out.append("<p>(no job histories supplied)</p>")

    out.append("<h2>Stragglers</h2>")
    stragglers = bundle["stragglers"]
    if stragglers:
        out.append(
            "<table><tr><th>task</th><th>round</th><th>kind</th>"
            "<th>node</th><th>run</th><th>wave median</th>"
            "<th>MAD score</th></tr>"
        )
        for entry in stragglers:
            out.append(
                f"<tr><td>{_esc(entry['task_id'])}</td>"
                f"<td>{_esc(entry.get('round', ''))}</td>"
                f"<td>{_esc(entry['kind'])}</td>"
                f"<td>{_esc(entry['node'])}</td>"
                f"<td>{_fmt_seconds(entry['run_seconds'])}</td>"
                f"<td>{_fmt_seconds(entry['wave_median'])}</td>"
                f"<td class='bad'>{entry['score']:.1f}</td></tr>"
            )
        out.append("</table>")
    else:
        out.append(
            f"<p class='ok'>none detected "
            f"(MAD threshold {threshold:g})</p>"
        )

    out.append("<h2>Worker resource sampling</h2>")
    grouped = resource_series(recorder)
    if grouped:
        for name, series_list in sorted(grouped.items()):
            out.append(f"<h3>{_esc(name)}</h3><table>")
            out.append("<tr><th>worker</th><th>sparkline</th>"
                       "<th>samples</th><th>min</th><th>max</th></tr>")
            for series in series_list:
                values = series.values()
                worker = series.tags.get("worker", "?")
                low = min(values) if values else 0.0
                high = max(values) if values else 0.0
                out.append(
                    f"<tr><td>{_esc(worker)}</td>"
                    f"<td>{_sparkline(values)}</td>"
                    f"<td>{len(values)}</td>"
                    f"<td>{_esc(_series_value_label(name, low))}</td>"
                    f"<td>{_esc(_series_value_label(name, high))}</td>"
                    "</tr>"
                )
            out.append("</table>")
    else:
        out.append(
            "<p>(sampler off — run with a sample interval, e.g. "
            "<code>repro-genomics report --sample-interval 0.02</code>)"
            "</p>"
        )

    counters = recorder.metrics.as_dict()["counters"]
    tenants = bundle.get("tenants") or {}
    if tenants:
        out.append("<h2>Tenants</h2>")
        out.append(
            "<table><tr><th>tenant</th><th>admitted</th>"
            "<th>rejected</th><th>completed</th><th>failed</th>"
            "<th>charged units</th><th>paid worker-seconds</th></tr>"
        )
        for name, entry in tenants.items():
            out.append(
                f"<tr><td>{_esc(name)}</td>"
                f"<td>{entry.get('admitted', 0):.0f}</td>"
                f"<td>{entry.get('rejected', 0):.0f}</td>"
                f"<td>{entry.get('completed', 0):.0f}</td>"
                f"<td>{entry.get('failed', 0):.0f}</td>"
                f"<td>{entry.get('charged_units', 0):.2f}</td>"
                f"<td>{_fmt_seconds(entry.get('paid_worker_seconds', 0))}"
                "</td></tr>"
            )
        out.append("</table>")

    if counters:
        out.append("<h2>Counters</h2><table>")
        out.append("<tr><th>name</th><th>value</th></tr>")
        for name, value in sorted(counters.items()):
            out.append(f"<tr><td>{_esc(name)}</td>"
                       f"<td>{_esc(value)}</td></tr>")
        out.append("</table>")

    out.append("</body></html>")
    return "\n".join(out)


def write_html_report(recorder, path: str, **kwargs: Any) -> str:
    """Render and write the report; returns the path."""
    with open(path, "w") as handle:
        handle.write(render_html_report(recorder, **kwargs))
        handle.write("\n")
    return path
