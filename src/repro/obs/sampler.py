"""Worker resource sampler: the continuous-observation half of obs.

The paper's methodology is not just end-to-end timings — its Fig 7/10
arguments rest on *watching* CPU and disk behaviour over a run.  This
module is the measured counterpart: a low-overhead sampler that runs
inside whatever worker the executor placed a task on (the serial
driver, a pool thread, a forked process) and records CPU%, RSS,
read/write bytes, and context switches on a configurable interval.

Sources, best first:

* ``/proc/self/statm`` / ``/proc/self/io`` — Linux, free to read, give
  RSS and real storage-side byte counts.
* ``resource.getrusage(RUSAGE_SELF)`` — portable fallback; ``ru_maxrss``
  stands in for RSS and ``ru_inblock``/``ru_oublock`` (512-byte units)
  for IO bytes.  CPU time and context switches always come from
  ``getrusage`` — they are exact counters, not sampled estimates.

Samples are tiny named tuples, so a task's whole series pickles cheaply
inside its outcome and crosses the executor's pipe exactly like spans
do.  The sampling thread is a daemon that takes one sample immediately,
one per interval, and one final sample at stop — every task yields at
least two points, so per-worker sparklines exist even for tasks far
shorter than the interval.

Timestamps are raw ``time.perf_counter()`` readings (the system-wide
monotonic clock shared with :mod:`repro.obs.recorder`), so driver-side
ingestion only subtracts the recorder epoch.
"""

from __future__ import annotations

import os
import threading
import time
from typing import List, NamedTuple, Optional, Tuple

try:
    import resource
except ImportError:  # non-POSIX: degrade to zero-cost stubs
    resource = None

#: Kernel block-accounting unit behind ``ru_inblock``/``ru_oublock``.
_RUSAGE_BLOCK_BYTES = 512

_PAGE_SIZE = 4096
if hasattr(os, "sysconf"):
    try:
        _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") or 4096
    except (ValueError, OSError):
        pass


class ResourceSample(NamedTuple):
    """One instant of a worker's resource state (monotonic raw counters).

    ``cpu_seconds`` / ``read_bytes`` / ``write_bytes`` / ``ctx_switches``
    are cumulative process totals; consumers difference consecutive
    samples to get rates.  ``rss_bytes`` is instantaneous.
    """

    t: float
    cpu_seconds: float
    rss_bytes: int
    read_bytes: int
    write_bytes: int
    ctx_switches: int


def _read_proc_statm_rss() -> Optional[int]:
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


def _read_proc_io() -> Optional[Tuple[int, int]]:
    try:
        with open("/proc/self/io", "rb") as handle:
            raw = handle.read()
        stats = {}
        for line in raw.splitlines():
            key, _, value = line.partition(b":")
            stats[key] = int(value)
        return stats[b"read_bytes"], stats[b"write_bytes"]
    except (OSError, KeyError, ValueError):
        return None


def probe_sources() -> dict:
    """Which sampling sources this host offers (report metadata)."""
    return {
        "proc_statm": _read_proc_statm_rss() is not None,
        "proc_io": _read_proc_io() is not None,
        "getrusage": resource is not None,
    }


def take_sample(clock=time.perf_counter) -> ResourceSample:
    """One sample of the current process, cheapest sources available."""
    t = clock()
    cpu_seconds = 0.0
    ctx_switches = 0
    rusage_rss = 0
    rusage_read = 0
    rusage_write = 0
    if resource is not None:
        usage = resource.getrusage(resource.RUSAGE_SELF)
        cpu_seconds = usage.ru_utime + usage.ru_stime
        ctx_switches = usage.ru_nvcsw + usage.ru_nivcsw
        # ru_maxrss is KiB on Linux; a high-water mark, not the current
        # RSS, but the best portable stand-in when /proc is absent.
        rusage_rss = usage.ru_maxrss * 1024
        rusage_read = usage.ru_inblock * _RUSAGE_BLOCK_BYTES
        rusage_write = usage.ru_oublock * _RUSAGE_BLOCK_BYTES
    rss = _read_proc_statm_rss()
    if rss is None:
        rss = rusage_rss
    io = _read_proc_io()
    if io is None:
        io = (rusage_read, rusage_write)
    return ResourceSample(t, cpu_seconds, rss, io[0], io[1], ctx_switches)


class ResourceSampler:
    """Samples the current process on an interval until stopped.

    Designed for one task attempt: ``start()`` takes an immediate
    sample and launches a daemon thread; ``stop()`` joins it and takes
    a guaranteed final sample.  Use as a context manager::

        with ResourceSampler(0.05) as sampler:
            run_the_task()
        outcome.samples = sampler.samples

    The overhead budget is two clock reads plus one ``getrusage`` and
    two small ``/proc`` reads per interval — microseconds against the
    millisecond-scale intervals anyone configures.
    """

    def __init__(self, interval: float, clock=time.perf_counter):
        if interval <= 0:
            raise ValueError(f"sampler interval must be > 0, got {interval}")
        self.interval = interval
        self.clock = clock
        self.samples: List[ResourceSample] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ResourceSampler":
        self.samples.append(take_sample(self.clock))
        self._thread = threading.Thread(
            target=self._run, name="obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.samples.append(take_sample(self.clock))

    def stop(self) -> List[ResourceSample]:
        """Stop sampling; returns the samples with a final reading."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.samples.append(take_sample(self.clock))
        return self.samples

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
