"""Metrics registry: counters, gauges, histograms with fixed buckets.

The driver-side half of the observability layer.  Counters and gauges
are plain named numbers; histograms bucket observations against a fixed
boundary list (Prometheus-style cumulative-le semantics, but stored as
per-bucket counts so the terminal report can print a distribution
without a scrape pipeline).

Thread safety: every mutation takes the instrument's lock, so spans
recorded from the threaded executor's workers and driver-side updates
interleave safely.  Instruments are driver-side state — task code
running in a forked worker mutates a copy-on-write clone that is thrown
away; task-side telemetry must travel back through the task outcome
(see :mod:`repro.mapreduce.engine`), exactly like Hadoop task counters.

The null variants are shared singletons whose mutators are no-ops, so
a disabled recorder adds one method call and zero allocations per
instrument touch.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Optional, Sequence, Tuple

#: Default histogram boundaries, in seconds: micro-task to whole-round.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0,
)


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named value that goes up and down (last write wins)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket distribution of observed values.

    ``buckets`` are upper bounds; an observation lands in the first
    bucket whose bound is >= the value, or the overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.buckets = bounds
        #: One count per bound plus the overflow (+inf) bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "sum": self.total,
                "count": self.count,
            }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, buckets or DEFAULT_BUCKETS
                )
            return instrument

    def as_dict(self) -> Dict[str, Any]:
        """Snapshot of every instrument, sorted by name."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].snapshot()
                for name in sorted(histograms)
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    name = ""
    value = 0
    total = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry stand-in whose instruments all discard their updates."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def as_dict(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
