"""Metrics registry: counters, gauges, histograms with fixed buckets.

The driver-side half of the observability layer.  Counters and gauges
are plain named numbers; histograms bucket observations against a fixed
boundary list (Prometheus-style cumulative-le semantics, but stored as
per-bucket counts so the terminal report can print a distribution
without a scrape pipeline).

Thread safety: every mutation takes the instrument's lock, so spans
recorded from the threaded executor's workers and driver-side updates
interleave safely.  Instruments are driver-side state — task code
running in a forked worker mutates a copy-on-write clone that is thrown
away; task-side telemetry must travel back through the task outcome
(see :mod:`repro.mapreduce.engine`), exactly like Hadoop task counters.

The null variants are shared singletons whose mutators are no-ops, so
a disabled recorder adds one method call and zero allocations per
instrument touch.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram boundaries, in seconds: micro-task to whole-round.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0,
)


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named value that goes up and down (last write wins)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket distribution of observed values.

    ``buckets`` are upper bounds; an observation lands in the first
    bucket whose bound is >= the value, or the overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.buckets = bounds
        #: One count per bound plus the overflow (+inf) bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # bisect_left gives the first bound >= value, so a value exactly
        # equal to any boundary — the last one included — lands in that
        # bound's bucket; only value > buckets[-1] overflows.
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "sum": self.total,
                "count": self.count,
            }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:g})"


class TimeSeries:
    """An append-only sequence of ``(t, value, tags)`` points.

    The store behind the worker resource sampler: one series per
    ``(name, identity tags)`` pair — e.g. ``proc.rss_bytes`` tagged by
    worker — whose points each additionally carry per-point tags (the
    task and phase active at sample time).  ``t`` is epoch-relative
    seconds so points plot directly against span timelines.

    Like the other instruments, all mutation happens under the lock;
    ``points()`` snapshots, so readers never race an appending sampler.
    """

    __slots__ = ("name", "tags", "_points", "_lock")

    def __init__(self, name: str, tags: Optional[Dict[str, str]] = None):
        self.name = name
        #: Identity tags, fixed at creation (part of the registry key).
        self.tags: Dict[str, str] = dict(tags or {})
        self._points: List[Tuple[float, float, Optional[Dict[str, Any]]]] = []
        self._lock = threading.Lock()

    def append(self, t: float, value: float,
               tags: Optional[Dict[str, Any]] = None) -> None:
        with self._lock:
            self._points.append((t, value, tags))

    def extend(
        self,
        points: Sequence[Tuple[float, float, Optional[Dict[str, Any]]]],
    ) -> None:
        with self._lock:
            self._points.extend(points)

    def points(self) -> List[Tuple[float, float, Optional[Dict[str, Any]]]]:
        """Snapshot of the points, ordered by timestamp."""
        with self._lock:
            points = list(self._points)
        points.sort(key=lambda point: point[0])
        return points

    def values(self) -> List[float]:
        return [value for _, value, _ in self.points()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "tags": dict(self.tags),
            "points": [
                {"t": round(t, 6), "value": value,
                 **({"tags": tags} if tags else {})}
                for t, value, tags in self.points()
            ],
        }

    def __repr__(self) -> str:
        return f"TimeSeries({self.name}, tags={self.tags}, n={len(self)})"


def _series_key(name: str, tags: Dict[str, str]) -> Tuple:
    return (name,) + tuple(sorted(tags.items()))


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timeseries: Dict[Tuple, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, buckets or DEFAULT_BUCKETS
                )
            return instrument

    def timeseries(self, name: str, **tags: str) -> TimeSeries:
        """The series for ``(name, tags)``, created on first use."""
        key = _series_key(name, tags)
        with self._lock:
            series = self._timeseries.get(key)
            if series is None:
                series = self._timeseries[key] = TimeSeries(name, tags)
            return series

    def all_timeseries(self) -> List[TimeSeries]:
        """Every series, ordered by (name, tags)."""
        with self._lock:
            series = dict(self._timeseries)
        return [series[key] for key in sorted(series)]

    def as_dict(self) -> Dict[str, Any]:
        """Snapshot of every instrument, sorted by name.

        Counter/gauge ``.value`` reads are single attribute loads of a
        value only ever rebound under the instrument lock, so reading
        them without it cannot observe a torn update; histogram and
        time-series snapshots take their own locks.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].snapshot()
                for name in sorted(histograms)
            },
            "timeseries": [
                series.snapshot() for series in self.all_timeseries()
            ],
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms, "
            f"{len(self._timeseries)} timeseries)"
        )


class _NullInstrument:
    """Shared no-op counter/gauge/histogram/series for the disabled path."""

    __slots__ = ()
    name = ""
    value = 0
    total = 0.0
    count = 0
    mean = 0.0
    tags: Dict[str, str] = {}

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def append(self, t: float, value: float,
               tags: Optional[Dict[str, Any]] = None) -> None:
        pass

    def extend(self, points: Sequence) -> None:
        pass

    def points(self) -> List:
        return []

    def values(self) -> List[float]:
        return []

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry stand-in whose instruments all discard their updates."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def timeseries(self, name: str, **tags: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def all_timeseries(self) -> List:
        return []

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": {}, "gauges": {}, "histograms": {},
            "timeseries": [],
        }


NULL_METRICS = NullMetrics()
