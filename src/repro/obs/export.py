"""Exporters for recorded traces.

Three targets:

* Chrome ``trace_event`` JSON (``chrome://tracing`` / Perfetto): one
  "X" complete event per span, with one rendering lane per track —
  load ``trace.json`` and the run reads like the paper's Fig 7 task
  timeline.
* JSONL: one JSON object per span plus a trailing metrics snapshot,
  for ad-hoc analysis with ``jq``/pandas.
* Terminal timeline: per-category concurrency strips over the shared
  :data:`repro.cluster.monitor.RAMP`, so a *real* run renders exactly
  like the simulator's Fig 7/Fig 10 strip charts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.monitor import render_ramp


def to_chrome_trace(recorder) -> Dict[str, Any]:
    """Convert a recorder's spans to the Chrome trace_event format."""
    spans = recorder.spans()
    epoch = recorder.epoch
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
            "args": {"name": "repro"},
        }
    ]
    span_events: List[Dict[str, Any]] = []
    for span in spans:
        tid = tids.setdefault(span.track, len(tids) + 1)
        args = span.attrs
        if span.end is None:
            # Dead-worker span: never closed.  Export it zero-length
            # and flagged, so the trace stays loadable.
            args = dict(args)
            args["incomplete"] = True
        span_events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                # trace_event timestamps are microseconds.
                "ts": round((span.start - epoch) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "args": args,
            }
        )
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
                "args": {"name": track},
            }
        )
    events.extend(span_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder, path: str) -> str:
    """Write ``trace.json``; returns the path for convenience."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(recorder), handle)
        handle.write("\n")
    return path


def to_jsonl_lines(recorder) -> List[str]:
    """One JSON object per span, plus a final metrics snapshot line."""
    epoch = recorder.epoch
    lines = []
    for span in recorder.spans():
        record = span.to_dict(epoch)
        record["type"] = "span"
        lines.append(json.dumps(record, sort_keys=True, default=str))
    lines.append(
        json.dumps(
            {"type": "metrics", "metrics": recorder.metrics.as_dict()},
            sort_keys=True,
        )
    )
    return lines


def write_jsonl(recorder, path: str) -> str:
    with open(path, "w") as handle:
        for line in to_jsonl_lines(recorder):
            handle.write(line)
            handle.write("\n")
    return path


def _concurrency_samples(
    intervals: Sequence[tuple], horizon: float, samples: int
) -> List[int]:
    """Active-interval count at ``samples`` evenly spaced instants."""
    counts = []
    for index in range(samples):
        t = horizon * (index + 0.5) / samples
        counts.append(sum(1 for start, end in intervals if start <= t < end))
    return counts


def render_timeline(
    recorder, width: int = 60,
    categories: Optional[Sequence[str]] = None,
) -> str:
    """Fig 7-style terminal timeline: one concurrency strip per category.

    Each row samples how many spans of that category are simultaneously
    active, normalised by the row's peak concurrency, and renders the
    result on the monitor strip-chart ramp.
    """
    spans = recorder.spans()
    horizon = recorder.horizon()
    if not spans or horizon <= 0 or width < 1:
        return "(no spans recorded)"
    epoch = recorder.epoch
    by_category: Dict[str, List[tuple]] = {}
    order: List[str] = []
    for span in spans:
        if categories is not None and span.category not in categories:
            continue
        if span.category not in by_category:
            by_category[span.category] = []
            order.append(span.category)
        # A dead-worker span never closed; draw it to the horizon.
        end = span.end - epoch if span.end is not None else horizon
        by_category[span.category].append((span.start - epoch, end))
    lines = [
        f"{'category':<12s}|{'concurrency over time':<{width}s}| "
        f"spans  peak  total"
    ]
    for category in order:
        intervals = by_category[category]
        counts = _concurrency_samples(intervals, horizon, width)
        peak = max(max(counts), 1)
        strip = render_ramp([count / peak for count in counts])
        total = sum(end - start for start, end in intervals)
        lines.append(
            f"{category:<12s}|{strip}| {len(intervals):>5d} {peak:>5d} "
            f"{total:>6.2f}s"
        )
    lines.append(f"(horizon {horizon:.3f}s, {width} samples per strip)")
    return "\n".join(lines)
