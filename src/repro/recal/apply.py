"""PrintReads / ApplyBQSR: rewrite base qualities (Table 2 step 8)."""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.formats.sam import SamHeader, SamRecord
from repro.recal.covariates import (
    ContextCovariate,
    CycleCovariate,
    BaseObservation,
)
from repro.recal.recalibrator import RecalibrationTable


class PrintReads:
    """Adjusts every base quality using a recalibration table.

    Map-only in the parallel pipeline: the table is broadcast, each
    record is rewritten independently.
    """

    name = "PrintReads"

    def __init__(self, table: RecalibrationTable):
        self.table = table
        self._cycle = CycleCovariate()
        self._context = ContextCovariate()

    def run(
        self, header: SamHeader, records: Iterable[SamRecord]
    ) -> Tuple[SamHeader, List[SamRecord]]:
        out = []
        for record in records:
            updated = record.copy()
            self.apply_to_record(updated)
            out.append(updated)
        return header.copy(), out

    def apply_to_record(self, record: SamRecord) -> None:
        """Rewrite the QUAL string of one record in place."""
        if record.seq == "*" or record.qual == "*":
            return
        rg = record.tags.get("RG", "unknown")
        quals = record.base_qualities()
        new_quals = []
        for offset, reported in enumerate(quals):
            obs = BaseObservation(
                record=record,
                read_offset=offset,
                ref_pos=0,
                ref_base="N",
                read_base=record.seq[offset],
                reported_quality=reported,
            )
            extras = {
                self._cycle.name: self._cycle.value(obs),
                self._context.name: self._context.value(obs),
            }
            new_quals.append(self.table.recalibrate(rg, reported, extras))
        record.set_base_qualities(new_quals)
