"""Base quality score recalibration (GATK BaseRecalibrator/PrintReads)."""

from repro.recal.apply import PrintReads
from repro.recal.covariates import (
    DEFAULT_COVARIATES,
    BaseObservation,
    ContextCovariate,
    CycleCovariate,
    ReadGroupCovariate,
    ReportedQualityCovariate,
    aligned_pairs,
    observations,
)
from repro.recal.recalibrator import (
    BaseRecalibrator,
    CovariateCounts,
    RecalibrationTable,
    empirical_quality,
)

__all__ = [
    "PrintReads",
    "DEFAULT_COVARIATES",
    "BaseObservation",
    "ContextCovariate",
    "CycleCovariate",
    "ReadGroupCovariate",
    "ReportedQualityCovariate",
    "aligned_pairs",
    "observations",
    "BaseRecalibrator",
    "CovariateCounts",
    "RecalibrationTable",
    "empirical_quality",
]
