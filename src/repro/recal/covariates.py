"""Covariates for base quality score recalibration.

A covariate is a feature of one base call; the recalibrator groups base
calls by covariate values and computes each group's empirical error
rate (Table 2 step: "Finds the empirical quality score for each
covariate").  The paper's GDPT classifies this stage as *group
partitioning by user-defined covariates*.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.formats.sam import SamRecord


class BaseObservation:
    """One aligned base call with everything covariates may inspect."""

    __slots__ = ("record", "read_offset", "ref_pos", "ref_base", "read_base",
                 "reported_quality")

    def __init__(self, record: SamRecord, read_offset: int, ref_pos: int,
                 ref_base: str, read_base: str, reported_quality: int):
        self.record = record
        self.read_offset = read_offset
        self.ref_pos = ref_pos
        self.ref_base = ref_base
        self.read_base = read_base
        self.reported_quality = reported_quality

    @property
    def is_mismatch(self) -> bool:
        return self.read_base != self.ref_base


class ReadGroupCovariate:
    """The RG tag of the record (sequencing lane / library)."""

    name = "ReadGroup"

    def value(self, obs: BaseObservation) -> str:
        return obs.record.tags.get("RG", "unknown")


class ReportedQualityCovariate:
    """The quality score the sequencer claimed for the base."""

    name = "ReportedQuality"

    def value(self, obs: BaseObservation) -> int:
        return obs.reported_quality


class CycleCovariate:
    """Machine cycle: position within the read, negative on reverse
    strand (bases at read ends tend to be lower quality — the paper's
    motivating example for recalibration)."""

    name = "Cycle"

    def value(self, obs: BaseObservation) -> int:
        cycle = obs.read_offset + 1
        if obs.record.flags.is_reverse:
            return -cycle
        return cycle


class ContextCovariate:
    """The preceding bases in the read (dinucleotide context)."""

    name = "Context"

    def __init__(self, size: int = 2):
        self.size = size

    def value(self, obs: BaseObservation) -> str:
        start = max(0, obs.read_offset - self.size + 1)
        context = obs.record.seq[start : obs.read_offset + 1]
        if len(context) < self.size:
            return "N" * self.size
        return context


DEFAULT_COVARIATES = (
    ReadGroupCovariate(),
    ReportedQualityCovariate(),
    CycleCovariate(),
    ContextCovariate(),
)


def aligned_pairs(record: SamRecord) -> Iterator[Tuple[int, int]]:
    """Yield ``(read_offset, ref_pos)`` for every aligned (M/=/X) base.

    Soft clips advance the read cursor; deletions/skips advance the
    reference cursor; insertions advance the read cursor.
    """
    read_cursor = 0
    ref_cursor = record.pos
    for length, op in record.cigar:
        if op in ("M", "=", "X"):
            for offset in range(length):
                yield read_cursor + offset, ref_cursor + offset
            read_cursor += length
            ref_cursor += length
        elif op in ("I", "S"):
            read_cursor += length
        elif op in ("D", "N"):
            ref_cursor += length
        # H and P consume neither.


def observations(record: SamRecord, reference) -> Iterator[BaseObservation]:
    """Yield one :class:`BaseObservation` per aligned base of a record.

    ``reference`` is a :class:`~repro.genome.reference.ReferenceGenome`.
    Unmapped and duplicate reads contribute nothing, as in GATK.
    """
    if record.flags.is_unmapped or record.flags.is_duplicate:
        return
    quals = record.base_qualities()
    contig_len = reference.contig_length(record.rname)
    for read_offset, ref_pos in aligned_pairs(record):
        if ref_pos < 1 or ref_pos > contig_len:
            continue
        yield BaseObservation(
            record=record,
            read_offset=read_offset,
            ref_pos=ref_pos,
            ref_base=reference.base_at(record.rname, ref_pos),
            read_base=record.seq[read_offset],
            reported_quality=quals[read_offset],
        )
