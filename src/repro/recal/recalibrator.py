"""BaseRecalibrator: empirical quality tables (Table 2 step 7).

Counts observations and mismatches per covariate group, skipping known
variant sites (a mismatch at a real variant is not a sequencing error),
then derives empirical qualities.  The counting is associative, which
is what lets the parallel wrapper aggregate partial tables from many
mappers.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.formats.sam import SamRecord
from repro.genome.reference import ReferenceGenome
from repro.recal.covariates import (
    DEFAULT_COVARIATES,
    observations,
)


def empirical_quality(observed: int, errors: int) -> float:
    """Phred-scaled empirical quality with +1/+2 smoothing."""
    rate = (errors + 1.0) / (observed + 2.0)
    return -10.0 * math.log10(rate)


class CovariateCounts:
    """(observations, errors) for one covariate group."""

    __slots__ = ("observed", "errors")

    def __init__(self, observed: int = 0, errors: int = 0):
        self.observed = observed
        self.errors = errors

    def add(self, is_error: bool) -> None:
        self.observed += 1
        if is_error:
            self.errors += 1

    def merge(self, other: "CovariateCounts") -> None:
        self.observed += other.observed
        self.errors += other.errors

    def empirical(self) -> float:
        return empirical_quality(self.observed, self.errors)

    def __repr__(self) -> str:
        return f"CovariateCounts({self.observed}, {self.errors})"


class RecalibrationTable:
    """Hierarchical covariate tables, GATK-style.

    Level 0: per read group; level 1: per (read group, reported Q);
    level 2: per (read group, reported Q, one extra covariate) for each
    extra covariate (cycle, context).
    """

    def __init__(self):
        self.read_group: Dict[str, CovariateCounts] = {}
        self.reported: Dict[Tuple[str, int], CovariateCounts] = {}
        self.extra: Dict[Tuple[str, int, str, object], CovariateCounts] = {}

    def _bump(self, table: Dict, key, is_error: bool) -> None:
        counts = table.get(key)
        if counts is None:
            counts = CovariateCounts()
            table[key] = counts
        counts.add(is_error)

    def add_observation(self, rg: str, reported: int,
                        extras: Dict[str, object], is_error: bool) -> None:
        self._bump(self.read_group, rg, is_error)
        self._bump(self.reported, (rg, reported), is_error)
        for name, value in extras.items():
            self._bump(self.extra, (rg, reported, name, value), is_error)

    def merge(self, other: "RecalibrationTable") -> None:
        """Aggregate a partial table (the parallel reducer's job)."""
        for key, counts in other.read_group.items():
            self.read_group.setdefault(key, CovariateCounts()).merge(counts)
        for key, counts in other.reported.items():
            self.reported.setdefault(key, CovariateCounts()).merge(counts)
        for key, counts in other.extra.items():
            self.extra.setdefault(key, CovariateCounts()).merge(counts)

    def total_observations(self) -> int:
        return sum(counts.observed for counts in self.read_group.values())

    # -- recalibrated quality lookup -------------------------------------
    def recalibrate(self, rg: str, reported: int,
                    extras: Dict[str, object]) -> int:
        """GATK's hierarchical delta model.

        Q = empirical(rg) + delta(reported | rg) + sum(delta(extra)).
        Groups never seen in training contribute no delta.
        """
        rg_counts = self.read_group.get(rg)
        if rg_counts is None:
            return reported
        quality = rg_counts.empirical()
        reported_counts = self.reported.get((rg, reported))
        if reported_counts is not None:
            quality += reported_counts.empirical() - rg_counts.empirical()
            base_for_extras = reported_counts.empirical()
            for name, value in extras.items():
                extra_counts = self.extra.get((rg, reported, name, value))
                if extra_counts is not None and extra_counts.observed >= 10:
                    quality += extra_counts.empirical() - base_for_extras
        return max(2, min(60, int(round(quality))))


class BaseRecalibrator:
    """Builds a :class:`RecalibrationTable` from aligned records."""

    name = "BaseRecalibrator"

    def __init__(self, reference: ReferenceGenome,
                 known_sites: Optional[Set[Tuple[str, int]]] = None,
                 covariates=DEFAULT_COVARIATES):
        self.reference = reference
        self.known_sites = known_sites or set()
        self.covariates = covariates

    def build_table(self, records: Iterable[SamRecord]) -> RecalibrationTable:
        table = RecalibrationTable()
        for record in records:
            self.add_record(table, record)
        return table

    def add_record(self, table: RecalibrationTable, record: SamRecord) -> None:
        """Add one record's observations (used by the parallel mapper)."""
        for obs in observations(record, self.reference):
            if (record.rname, obs.ref_pos) in self.known_sites:
                continue
            extras = {}
            rg = "unknown"
            reported = obs.reported_quality
            for covariate in self.covariates:
                if covariate.name == "ReadGroup":
                    rg = covariate.value(obs)
                elif covariate.name == "ReportedQuality":
                    reported = covariate.value(obs)
                else:
                    extras[covariate.name] = covariate.value(obs)
            table.add_observation(rg, reported, extras, obs.is_mismatch)
