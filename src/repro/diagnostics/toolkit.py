"""The error-diagnosis toolkit (paper sections 3.4 and 4.5.2).

Given a serial pipeline result and a parallel pipeline result over the
same input, produces the full Table 8 report — D_count and D_impact,
raw and logistic-weighted, for each parallel pipeline prefix — plus the
Fig 11 analyses (MAPQ distribution, hard-region attribution, insert
size) and the Tables 9/10 quality comparison.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.genome.reference import ReferenceGenome
from repro.metrics.accuracy import (
    AlignmentComparison,
    DuplicateComparison,
    VariantComparison,
    compare_alignments,
    compare_duplicates,
    compare_variants,
)
from repro.metrics.quality import VariantSetSummary, quality_table
from repro.pipeline.hybrid import HybridPipeline
from repro.pipeline.parallel import GesallPipelineResult
from repro.pipeline.serial import SerialPipelineResult
from repro.variants.haplotype import HaplotypeCallerConfig


class Table8Row:
    """One row of Table 8: a pipeline prefix's D_count and D_impact."""

    def __init__(self, stage: str, d_count: float, weighted_d_count: float,
                 weighted_d_count_pct: float,
                 d_impact: Optional[int] = None,
                 weighted_d_impact: Optional[float] = None,
                 weighted_d_impact_pct: Optional[float] = None):
        self.stage = stage
        self.d_count = d_count
        self.weighted_d_count = weighted_d_count
        self.weighted_d_count_pct = weighted_d_count_pct
        self.d_impact = d_impact
        self.weighted_d_impact = weighted_d_impact
        self.weighted_d_impact_pct = weighted_d_impact_pct

    def __repr__(self) -> str:
        return (
            f"Table8Row({self.stage}: D_count={self.d_count}, "
            f"D_impact={self.d_impact})"
        )


class DiagnosisReport:
    """Everything the accuracy validation produces."""

    def __init__(self):
        self.rows: List[Table8Row] = []
        self.alignment: Optional[AlignmentComparison] = None
        self.duplicates: Optional[DuplicateComparison] = None
        self.variants: Optional[VariantComparison] = None
        self.impact_from_alignment: Optional[VariantComparison] = None
        self.impact_from_markdup: Optional[VariantComparison] = None
        self.quality_rows: List[VariantSetSummary] = []

    def row(self, stage: str) -> Table8Row:
        for row in self.rows:
            if row.stage == stage:
                return row
        raise KeyError(stage)


class ErrorDiagnosisToolkit:
    """Compare a serial and a parallel run of the same sample."""

    def __init__(self, reference: ReferenceGenome,
                 hc_config: Optional[HaplotypeCallerConfig] = None):
        self.reference = reference
        self.hybrid = HybridPipeline(reference, hc_config)

    def diagnose(
        self,
        serial: SerialPipelineResult,
        parallel: GesallPipelineResult,
    ) -> DiagnosisReport:
        """Produce the full Table 8 report.

        D_impact of the parallel Bwa prefix is measured by running the
        serial tail (cleaning, MarkDuplicates, Haplotype Caller) on the
        parallel alignment; D_impact of the MarkDuplicates prefix by
        running serial Haplotype Caller on the parallel deduped output.
        """
        report = DiagnosisReport()

        report.alignment = compare_alignments(
            serial.alignment, parallel.alignment
        )
        report.duplicates = compare_duplicates(
            serial.deduped, parallel.deduped
        )
        report.variants = compare_variants(serial.variants, parallel.variants)

        hybrid_from_bwa = self.hybrid.from_alignment(parallel.alignment)
        report.impact_from_alignment = compare_variants(
            serial.variants, hybrid_from_bwa
        )
        hybrid_from_md = self.hybrid.from_markdup(parallel.deduped)
        report.impact_from_markdup = compare_variants(
            serial.variants, hybrid_from_md
        )

        total_variants = max(
            1, len(report.impact_from_alignment.concordant)
            + report.impact_from_alignment.d_count
        )
        report.rows = [
            Table8Row(
                "Bwa",
                report.alignment.d_count,
                report.alignment.weighted_d_count,
                report.alignment.weighted_d_count_percent,
                d_impact=report.impact_from_alignment.d_count,
                weighted_d_impact=report.impact_from_alignment.weighted_d_count,
                weighted_d_impact_pct=(
                    100.0 * report.impact_from_alignment.weighted_d_count
                    / total_variants
                ),
            ),
            Table8Row(
                "Mark Duplicates",
                report.duplicates.flag_differences,
                report.duplicates.weighted,
                (
                    100.0 * report.duplicates.weighted
                    / max(1, report.duplicates.total)
                ),
                d_impact=report.impact_from_markdup.d_count,
                weighted_d_impact=report.impact_from_markdup.weighted_d_count,
                weighted_d_impact_pct=(
                    100.0 * report.impact_from_markdup.weighted_d_count
                    / total_variants
                ),
            ),
            Table8Row(
                "Haplotype Caller",
                report.variants.d_count,
                report.variants.weighted_d_count,
                report.variants.d_count_percent,
            ),
        ]

        # Tables 9/10 compare the serial pipeline against the hybrid
        # "parallel pipeline + serial Haplotype Caller" — i.e. the
        # MarkDuplicates-prefix hybrid.
        report.quality_rows = quality_table(
            concordant=report.impact_from_markdup.concordant,
            only_serial=report.impact_from_markdup.only_first,
            only_hybrid=report.impact_from_markdup.only_second,
        )
        return report

    # -- chaos regression gate ---------------------------------------------
    @staticmethod
    def equivalence_gate(
        clean: GesallPipelineResult, chaos: GesallPipelineResult
    ) -> VariantComparison:
        """Table 8's methodology as a fault-tolerance regression gate.

        Compares a clean run's variants against a chaos run's (same
        pipeline, same input, faults injected).  Fault tolerance is
        *correct* only when the comparison is empty — every injected
        failure was absorbed without changing a single call, i.e.
        ``weighted_d_count == 0`` and no one-sided variants.
        """
        return compare_variants(clean.variants, chaos.variants)

    # -- Fig 11b -----------------------------------------------------------
    @staticmethod
    def mapq_joint_distribution(
        comparison: AlignmentComparison,
    ) -> List[Tuple[int, int]]:
        """(serial MAPQ, parallel MAPQ) of every disagreeing read."""
        return [
            (d.serial.mapq, d.parallel.mapq) for d in comparison.discordant
        ]

    @staticmethod
    def low_quality_fraction(
        comparison: AlignmentComparison, threshold: int = 30
    ) -> float:
        """Fraction of disagreeing reads whose best MAPQ is below
        ``threshold`` ("majority of disagreeing reads have low mapping
        quality")."""
        if not comparison.discordant:
            return 0.0
        low = sum(
            1 for d in comparison.discordant if d.max_mapq < threshold
        )
        return low / len(comparison.discordant)
