"""Error-diagnosis toolkit: why parallel differs from serial (section 4.5)."""

from repro.diagnostics.insert_size import (
    edge_enrichment,
    insert_size_histogram,
    population_insert_stats,
)
from repro.diagnostics.regions import (
    RegionAttribution,
    attribute_regions,
    discordance_coverage,
    enrichment_in_hard_regions,
    filtered_discordance_fraction,
)
from repro.diagnostics.toolkit import (
    DiagnosisReport,
    ErrorDiagnosisToolkit,
    Table8Row,
)

__all__ = [
    "edge_enrichment",
    "insert_size_histogram",
    "population_insert_stats",
    "RegionAttribution",
    "attribute_regions",
    "discordance_coverage",
    "enrichment_in_hard_regions",
    "filtered_discordance_fraction",
    "DiagnosisReport",
    "ErrorDiagnosisToolkit",
    "Table8Row",
]
