"""Genomic attribution of discordant reads (Fig 11a, Appendix B.2).

Bins discordant read pairs along each chromosome and relates them to
centromere and blacklisted regions, reproducing the paper's finding
that "a large proportion of disagreeing reads are gathered around
hard-to-map regions".
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.genome.reference import ReferenceGenome
from repro.metrics.accuracy import DiscordantAlignment


class RegionAttribution:
    """Where the discordant reads fall."""

    def __init__(self, total: int, in_centromere: int, in_blacklist: int,
                 elsewhere: int, in_duplication: int = 0):
        self.total = total
        self.in_centromere = in_centromere
        self.in_blacklist = in_blacklist
        self.in_duplication = in_duplication
        self.elsewhere = elsewhere

    @property
    def hard_region_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        hard = self.in_centromere + self.in_blacklist + self.in_duplication
        return hard / self.total

    def __repr__(self) -> str:
        return (
            f"RegionAttribution(total={self.total}, "
            f"centromere={self.in_centromere}, blacklist={self.in_blacklist}, "
            f"duplication={self.in_duplication}, elsewhere={self.elsewhere})"
        )


def _positions_of(discordant: DiscordantAlignment) -> List[Tuple[str, int]]:
    positions = []
    for record in (discordant.serial, discordant.parallel):
        if record.is_mapped:
            positions.append((record.rname, record.pos))
    return positions


def attribute_regions(
    discordants: Sequence[DiscordantAlignment], reference: ReferenceGenome
) -> RegionAttribution:
    """Classify each discordant read by the regions it touches."""
    in_centromere = in_blacklist = in_duplication = elsewhere = 0
    for discordant in discordants:
        positions = _positions_of(discordant)
        if any(reference.centromeres.contains(c, p) for c, p in positions):
            in_centromere += 1
        elif any(reference.blacklist.contains(c, p) for c, p in positions):
            in_blacklist += 1
        elif any(reference.duplications.contains(c, p) for c, p in positions):
            in_duplication += 1
        else:
            elsewhere += 1
    return RegionAttribution(
        len(discordants), in_centromere, in_blacklist, elsewhere,
        in_duplication,
    )


def discordance_coverage(
    discordants: Sequence[DiscordantAlignment],
    reference: ReferenceGenome,
    bin_size: int = 500,
) -> Dict[str, List[int]]:
    """Per-bin counts of disagreeing reads along each contig (Fig 11a).

    The x-axis of the paper's plot; spikes should co-locate with
    centromere/blacklist intervals (queryable on the reference).
    """
    coverage: Dict[str, List[int]] = {
        contig: [0] * (reference.contig_length(contig) // bin_size + 1)
        for contig in reference.contig_names()
    }
    for discordant in discordants:
        for contig, pos in _positions_of(discordant):
            if contig in coverage:
                coverage[contig][pos // bin_size] += 1
    return coverage


def enrichment_in_hard_regions(
    discordants: Sequence[DiscordantAlignment], reference: ReferenceGenome
) -> float:
    """Fold enrichment of discordance inside hard regions vs genome-wide.

    >1 means discordant reads concentrate around hard-to-map regions.
    """
    attribution = attribute_regions(discordants, reference)
    hard_len = (
        reference.centromeres.total_length()
        + reference.blacklist.total_length()
        + reference.duplications.total_length()
    )
    genome_len = reference.total_length()
    if genome_len == 0 or hard_len == 0 or attribution.total == 0:
        return 0.0
    expected = hard_len / genome_len
    observed = attribution.hard_region_fraction
    return observed / expected


def filtered_discordance_fraction(
    discordants: Sequence[DiscordantAlignment],
    reference: ReferenceGenome,
    total_reads: int,
    min_mapq: int = 30,
) -> float:
    """Discordance after the two standard downstream filters.

    Downstream algorithms ignore mapq <= 30 reads and blacklisted
    regions; applying both reduces the paper's differences to 0.025 %
    of read pairs.  Returns the surviving fraction of ``total_reads``.
    """
    surviving = 0
    for discordant in discordants:
        if discordant.max_mapq < min_mapq:
            continue
        positions = _positions_of(discordant)
        if any(reference.in_hard_region(c, p) for c, p in positions):
            continue
        surviving += 1
    if total_reads == 0:
        return 0.0
    return surviving / total_reads
