"""Insert-size analysis of discordant pairs (Fig 11c, Appendix B.2).

Bwa scores pairs against a per-batch insert-size distribution, so pairs
whose insert size lies in the distribution's tails flip decisions when
batch composition changes.  The paper plots disagreeing-pair counts
against insert size and sees elevation at the edges; this module
reproduces that analysis.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.metrics.accuracy import DiscordantAlignment


def insert_size_histogram(
    discordants: Sequence[DiscordantAlignment], bin_width: int = 20
) -> Dict[int, int]:
    """Histogram of |TLEN| for disagreeing pairs (properly paired only)."""
    histogram: Dict[int, int] = {}
    for discordant in discordants:
        record = discordant.serial
        if not record.flags.is_proper_pair or record.tlen == 0:
            record = discordant.parallel
        if record.tlen == 0:
            continue
        bucket = (abs(record.tlen) // bin_width) * bin_width
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return histogram


def population_insert_stats(
    records: Sequence,
) -> Tuple[float, float]:
    """Mean and sd of |TLEN| over properly paired records."""
    inserts = [
        abs(record.tlen)
        for record in records
        if record.flags.is_proper_pair and record.tlen > 0
    ]
    if not inserts:
        return (0.0, 1.0)
    mean = sum(inserts) / len(inserts)
    var = sum((x - mean) ** 2 for x in inserts) / max(1, len(inserts) - 1)
    return (mean, math.sqrt(max(var, 1e-9)))


def edge_enrichment(
    discordants: Sequence[DiscordantAlignment],
    all_records: Sequence,
    edge_z: float = 2.0,
) -> Tuple[float, float]:
    """(discordant edge fraction, population edge fraction).

    A pair is "at the edge" when its insert size is more than ``edge_z``
    standard deviations from the population mean.  The paper's finding
    is the first fraction exceeding the second: disagreements cluster
    at the distribution's edges.
    """
    mean, sd = population_insert_stats(all_records)
    if sd <= 0:
        return (0.0, 0.0)

    def at_edge(tlen: int) -> bool:
        return abs(abs(tlen) - mean) > edge_z * sd

    population = [
        record for record in all_records
        if record.flags.is_proper_pair and record.tlen > 0
    ]
    pop_edge = (
        sum(1 for record in population if at_edge(record.tlen)) / len(population)
        if population
        else 0.0
    )

    discordant_inserts: List[int] = []
    for discordant in discordants:
        for record in (discordant.serial, discordant.parallel):
            if record.tlen != 0:
                discordant_inserts.append(record.tlen)
                break
    disc_edge = (
        sum(1 for tlen in discordant_inserts if at_edge(tlen))
        / len(discordant_inserts)
        if discordant_inserts
        else 0.0
    )
    return (disc_edge, pop_edge)
