"""Variant calling: pileup engine, UnifiedGenotyperLite, HaplotypeCallerLite."""

from repro.variants.annotations import (
    allele_balance,
    column_annotations,
    fisher_exact_two_tailed,
    fisher_strand,
    rms_mapping_quality,
)
from repro.variants.genotyper import (
    GenotyperConfig,
    UnifiedGenotyperLite,
    call_column,
    diploid_binary_posteriors,
    diploid_snp_posteriors,
)
from repro.variants.haplotype import (
    HaplotypeCallerConfig,
    HaplotypeCallerLite,
    activity_score,
    required_overlap,
)
from repro.variants.somatic import (
    MutectConfig,
    MutectLite,
    normal_lod,
    tumor_lod,
)
from repro.variants.structural import (
    DELETION,
    INVERSION,
    GASVConfig,
    GASVLite,
    StructuralVariantCall,
    estimate_insert_distribution,
)
from repro.variants.pileup import (
    PileupColumn,
    PileupConfig,
    PileupEntry,
    build_pileup,
    record_passes,
)

__all__ = [
    "allele_balance",
    "column_annotations",
    "fisher_exact_two_tailed",
    "fisher_strand",
    "rms_mapping_quality",
    "GenotyperConfig",
    "UnifiedGenotyperLite",
    "call_column",
    "diploid_binary_posteriors",
    "diploid_snp_posteriors",
    "HaplotypeCallerConfig",
    "HaplotypeCallerLite",
    "activity_score",
    "required_overlap",
    "MutectConfig",
    "MutectLite",
    "normal_lod",
    "tumor_lod",
    "DELETION",
    "INVERSION",
    "GASVConfig",
    "GASVLite",
    "StructuralVariantCall",
    "estimate_insert_distribution",
    "PileupColumn",
    "PileupConfig",
    "PileupEntry",
    "build_pileup",
    "record_passes",
]
