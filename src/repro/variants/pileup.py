"""Pileup engine: per-position stacks of aligned bases.

Both small-variant callers consume pileups; the Haplotype Caller
additionally derives its activity statistic from them.  Reads flagged
as duplicates are excluded — this is the channel through which
MarkDuplicates tie-breaking differences propagate into variant calls
(the paper's D_impact chain).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.formats.sam import SamRecord
from repro.genome.regions import GenomicInterval
from repro.recal.covariates import aligned_pairs


class PileupEntry:
    """One read's contribution to one reference position."""

    __slots__ = ("record", "read_offset", "base", "quality", "mapq",
                 "reverse", "indel")

    def __init__(self, record: SamRecord, read_offset: int, base: str,
                 quality: int, mapq: int, reverse: bool,
                 indel: Optional[Tuple[str, str]] = None):
        self.record = record
        self.read_offset = read_offset
        self.base = base
        self.quality = quality
        self.mapq = mapq
        self.reverse = reverse
        #: ``(ref_allele, alt_allele)`` if an indel starts right after
        #: this base on this read, else ``None``.
        self.indel = indel


class PileupColumn:
    """All read evidence overlapping one reference position."""

    __slots__ = ("contig", "pos", "entries")

    def __init__(self, contig: str, pos: int, entries: List[PileupEntry]):
        self.contig = contig
        self.pos = pos
        self.entries = entries

    @property
    def depth(self) -> int:
        return len(self.entries)

    def base_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.base] = counts.get(entry.base, 0) + 1
        return counts

    def indel_observations(self) -> Dict[Tuple[str, str], int]:
        counts: Dict[Tuple[str, str], int] = {}
        for entry in self.entries:
            if entry.indel is not None:
                counts[entry.indel] = counts.get(entry.indel, 0) + 1
        return counts

    def __repr__(self) -> str:
        return f"PileupColumn({self.contig}:{self.pos}, depth={self.depth})"


class PileupConfig:
    """Read filters applied before piling up."""

    def __init__(self, min_mapq: int = 13, min_base_quality: int = 6,
                 include_duplicates: bool = False):
        self.min_mapq = min_mapq
        self.min_base_quality = min_base_quality
        self.include_duplicates = include_duplicates


def record_passes(record: SamRecord, config: PileupConfig) -> bool:
    """The caller-level read filter (GATK-style)."""
    if record.flags.is_unmapped or not record.flags.is_primary:
        return False
    if record.flags.is_duplicate and not config.include_duplicates:
        return False
    if record.mapq < config.min_mapq:
        return False
    return True


def _indel_after(record: SamRecord, read_offset: int, ref_pos: int,
                 reference) -> Optional[Tuple[str, str]]:
    """Detect an I or D operation starting immediately after this base."""
    read_cursor = 0
    ref_cursor = record.pos
    ops = list(record.cigar)
    for index, (length, op) in enumerate(ops):
        if op in ("M", "=", "X"):
            end_read = read_cursor + length - 1
            end_ref = ref_cursor + length - 1
            if read_offset == end_read and ref_pos == end_ref and index + 1 < len(ops):
                next_len, next_op = ops[index + 1]
                if next_op == "I":
                    inserted = record.seq[end_read + 1 : end_read + 1 + next_len]
                    ref_base = reference.base_at(record.rname, ref_pos)
                    return (ref_base, ref_base + inserted)
                if next_op == "D":
                    contig_len = reference.contig_length(record.rname)
                    if ref_pos + next_len <= contig_len:
                        ref_allele = reference.fetch(
                            record.rname, ref_pos, ref_pos + next_len + 1
                        )
                        return (ref_allele, ref_allele[0])
            read_cursor += length
            ref_cursor += length
        elif op in ("I", "S"):
            read_cursor += length
        elif op in ("D", "N"):
            ref_cursor += length
    return None


def build_pileup(
    records: Iterable[SamRecord],
    reference,
    interval: Optional[GenomicInterval] = None,
    config: Optional[PileupConfig] = None,
) -> Iterator[PileupColumn]:
    """Yield pileup columns in coordinate order.

    ``interval`` restricts the output columns (reads overlapping the
    interval still contribute from outside it).
    """
    config = config or PileupConfig()
    columns: Dict[Tuple[str, int], List[PileupEntry]] = {}
    for record in records:
        if not record_passes(record, config):
            continue
        if interval is not None and record.rname != interval.contig:
            continue
        quals = record.base_qualities()
        for read_offset, ref_pos in aligned_pairs(record):
            if interval is not None and not (
                interval.start <= ref_pos < interval.end
            ):
                continue
            if read_offset >= len(quals):
                continue
            quality = quals[read_offset]
            if quality < config.min_base_quality:
                continue
            indel = _indel_after(record, read_offset, ref_pos, reference)
            entry = PileupEntry(
                record=record,
                read_offset=read_offset,
                base=record.seq[read_offset],
                quality=quality,
                mapq=record.mapq,
                reverse=record.flags.is_reverse,
                indel=indel,
            )
            columns.setdefault((record.rname, ref_pos), []).append(entry)
    contig_order: Dict[str, int] = {}
    for contig, _ in columns:
        if contig not in contig_order:
            contig_order[contig] = len(contig_order)
    for (contig, pos) in sorted(
        columns, key=lambda key: (contig_order[key[0]], key[1])
    ):
        yield PileupColumn(contig, pos, columns[(contig, pos)])
