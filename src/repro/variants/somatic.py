"""MutectLite: tumor/normal somatic point-mutation calling.

The paper motivates its platform with cancer workloads: "Some
algorithms, such as Mutect [5] and Theta [25] for complex cancer
analysis, alone can take days or weeks to complete on whole genome
data" (section 1).  This module implements the statistical core of the
MuTect family so those pipelines have a concrete stand-in:

* a *tumor* LOD score: is the tumor pileup better explained by a
  mutation at allele fraction f than by sequencing noise?
* a *normal* LOD score: is the matched normal consistent with the
  reference (i.e. the mutation is somatic, not germline)?

Both are per-site computations over pileups, so the caller partitions
exactly like the Unified Genotyper (non-overlapping ranges) and slots
into a Round-5-style map-only job.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from repro.formats.sam import SamRecord
from repro.formats.vcf import VariantRecord
from repro.genome.reference import ReferenceGenome
from repro.genome.regions import GenomicInterval
from repro.variants.annotations import column_annotations
from repro.variants.pileup import PileupColumn, PileupConfig, build_pileup


class MutectConfig:
    """Thresholds of the somatic caller (MuTect-style defaults)."""

    def __init__(
        self,
        tumor_lod_threshold: float = 6.3,
        normal_lod_threshold: float = 2.3,
        min_tumor_depth: int = 8,
        min_normal_depth: int = 6,
        min_alt_count: int = 3,
        pileup: Optional[PileupConfig] = None,
    ):
        #: log10 odds the tumor carries the variant vs noise.
        self.tumor_lod_threshold = tumor_lod_threshold
        #: log10 odds the normal is reference vs het germline.
        self.normal_lod_threshold = normal_lod_threshold
        self.min_tumor_depth = min_tumor_depth
        self.min_normal_depth = min_normal_depth
        self.min_alt_count = min_alt_count
        self.pileup = pileup or PileupConfig()


def _log10_likelihood(column: PileupColumn, ref_base: str, alt_base: str,
                      fraction: float) -> float:
    """log10 P(pileup | allele fraction ``fraction`` of ``alt_base``)."""
    total = 0.0
    for entry in column.entries:
        error = 10.0 ** (-entry.quality / 10.0)
        p_ref_read = (1.0 - error) if entry.base == ref_base else error / 3.0
        p_alt_read = (1.0 - error) if entry.base == alt_base else error / 3.0
        p = (1.0 - fraction) * p_ref_read + fraction * p_alt_read
        total += math.log10(max(p, 1e-12))
    return total


def tumor_lod(column: PileupColumn, ref_base: str, alt_base: str) -> float:
    """LOD of the best-fraction mutation model vs the noise-only model."""
    counts = column.base_counts()
    alt_count = counts.get(alt_base, 0)
    if column.depth == 0:
        return 0.0
    fraction = max(1e-3, alt_count / column.depth)
    with_mutation = _log10_likelihood(column, ref_base, alt_base, fraction)
    noise_only = _log10_likelihood(column, ref_base, alt_base, 0.0)
    return with_mutation - noise_only


def normal_lod(column: PileupColumn, ref_base: str, alt_base: str) -> float:
    """LOD that the normal is homozygous reference vs het germline."""
    reference_model = _log10_likelihood(column, ref_base, alt_base, 0.0)
    germline_het = _log10_likelihood(column, ref_base, alt_base, 0.5)
    return reference_model - germline_het


class MutectLite:
    """Paired tumor/normal somatic point-mutation caller."""

    name = "Mutect"

    def __init__(self, reference: ReferenceGenome,
                 config: Optional[MutectConfig] = None):
        self.reference = reference
        self.config = config or MutectConfig()

    def call(
        self,
        tumor_records: Iterable[SamRecord],
        normal_records: Iterable[SamRecord],
        interval: Optional[GenomicInterval] = None,
    ) -> List[VariantRecord]:
        """Somatic SNVs present in the tumor but absent in the normal."""
        config = self.config
        tumor_columns = {
            (c.contig, c.pos): c
            for c in build_pileup(tumor_records, self.reference, interval,
                                  config.pileup)
        }
        normal_columns = {
            (c.contig, c.pos): c
            for c in build_pileup(normal_records, self.reference, interval,
                                  config.pileup)
        }
        calls: List[VariantRecord] = []
        for (contig, pos), tumor_column in sorted(tumor_columns.items()):
            if tumor_column.depth < config.min_tumor_depth:
                continue
            ref_base = self.reference.base_at(contig, pos)
            counts = tumor_column.base_counts()
            alt_candidates = [
                (count, base) for base, count in counts.items()
                if base != ref_base and count >= config.min_alt_count
            ]
            if not alt_candidates:
                continue
            _, alt_base = max(alt_candidates)

            t_lod = tumor_lod(tumor_column, ref_base, alt_base)
            if t_lod < config.tumor_lod_threshold:
                continue

            normal_column = normal_columns.get((contig, pos))
            if (
                normal_column is None
                or normal_column.depth < config.min_normal_depth
            ):
                continue  # cannot establish somatic status
            n_lod = normal_lod(normal_column, ref_base, alt_base)
            if n_lod < config.normal_lod_threshold:
                continue  # looks germline (or normal is contaminated)

            alt_count = counts.get(alt_base, 0)
            info = column_annotations(tumor_column, ref_base, alt_base)
            info["TLOD"] = round(t_lod, 3)
            info["NLOD"] = round(n_lod, 3)
            info["AF"] = round(alt_count / tumor_column.depth, 4)
            calls.append(
                VariantRecord(
                    contig, pos, ref_base, alt_base,
                    qual=round(10.0 * t_lod, 2),
                    genotype="0/1",
                    info=info,
                )
            )
        return calls
