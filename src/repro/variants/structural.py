"""GASVLite: structural variant detection from discordant read pairs.

The paper's pipeline is "currently testing GASV [33] and somatic
mutation algorithms" for large structural variants that span thousands
of bases (section 2.1); this module implements the discordant-pair core
of that family of algorithms:

* estimate the proper insert-size distribution from concordant pairs;
* collect *discordant* pairs — FR pairs whose implied fragment is far
  longer than expected (deletion signature) or same-strand pairs
  (inversion signature);
* cluster discordant pairs whose breakpoint intervals agree;
* call an SV per sufficiently supported cluster.

Like the small-variant callers it runs per range partition, so it slots
directly into a Round-5-style map-only job.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.formats.sam import SamRecord

DELETION = "DEL"
INVERSION = "INV"


class StructuralVariantCall:
    """One structural variant call."""

    __slots__ = ("contig", "start", "end", "kind", "support", "size_estimate")

    def __init__(self, contig: str, start: int, end: int, kind: str,
                 support: int, size_estimate: float):
        self.contig = contig
        self.start = start
        self.end = end
        self.kind = kind
        #: Number of discordant pairs supporting the call.
        self.support = support
        #: Estimated SV length from the insert-size excess.
        self.size_estimate = size_estimate

    def overlaps(self, contig: str, start: int, end: int,
                 margin: int = 0) -> bool:
        return (
            contig == self.contig
            and self.start - margin < end
            and start < self.end + margin
        )

    def __repr__(self) -> str:
        return (
            f"StructuralVariantCall({self.kind} {self.contig}:"
            f"{self.start}-{self.end}, support={self.support}, "
            f"~{self.size_estimate:.0f}bp)"
        )


class GASVConfig:
    """Thresholds of the discordant-pair caller."""

    def __init__(
        self,
        discordant_z: float = 4.0,
        min_support: int = 4,
        cluster_slack: int = 150,
        min_mapq: int = 20,
    ):
        #: Insert sizes more than this many SDs above the mean are
        #: deletion-discordant.
        self.discordant_z = discordant_z
        self.min_support = min_support
        #: Max distance between pair intervals merged into one cluster.
        self.cluster_slack = cluster_slack
        self.min_mapq = min_mapq


class _DiscordantPair:
    __slots__ = ("contig", "left_end", "right_start", "insert", "kind")

    def __init__(self, contig: str, left_end: int, right_start: int,
                 insert: int, kind: str):
        self.contig = contig
        #: Rightmost base of the left read (breakpoint lower bound).
        self.left_end = left_end
        #: Leftmost base of the right read (breakpoint upper bound).
        self.right_start = right_start
        self.insert = insert
        self.kind = kind


def estimate_insert_distribution(
    records: Sequence[SamRecord],
) -> Tuple[float, float]:
    """Mean/sd of |TLEN| over proper pairs (trimmed of the top 5%)."""
    inserts = sorted(
        record.tlen
        for record in records
        if record.flags.is_proper_pair and record.tlen > 0
    )
    if not inserts:
        return (0.0, 1.0)
    trimmed = inserts[: max(1, int(0.95 * len(inserts)))]
    mean = sum(trimmed) / len(trimmed)
    var = sum((x - mean) ** 2 for x in trimmed) / max(1, len(trimmed) - 1)
    return (mean, math.sqrt(max(var, 1.0)))


class GASVLite:
    """Discordant-pair structural variant caller."""

    name = "GASV"

    def __init__(self, config: Optional[GASVConfig] = None):
        self.config = config or GASVConfig()

    def call(self, records: Iterable[SamRecord]) -> List[StructuralVariantCall]:
        """Call SVs over (a partition of) a coordinate-sorted dataset."""
        records = list(records)
        mean, sd = estimate_insert_distribution(records)
        if mean <= 0:
            return []
        threshold = mean + self.config.discordant_z * sd
        discordant = self._collect_discordant(records, threshold)
        calls: List[StructuralVariantCall] = []
        for kind in (DELETION, INVERSION):
            pairs = [p for p in discordant if p.kind == kind]
            calls.extend(self._cluster(pairs, kind, mean))
        calls.sort(key=lambda call: (call.contig, call.start))
        return calls

    # -- discordant pair collection ----------------------------------------
    def _collect_discordant(
        self, records: List[SamRecord], deletion_threshold: float
    ) -> List[_DiscordantPair]:
        by_name: Dict[str, List[SamRecord]] = {}
        for record in records:
            if (
                record.flags.is_unmapped
                or not record.flags.is_primary
                or record.flags.is_duplicate
                or record.mapq < self.config.min_mapq
            ):
                continue
            by_name.setdefault(record.qname, []).append(record)

        discordant: List[_DiscordantPair] = []
        for ends in by_name.values():
            if len(ends) != 2:
                continue
            first, second = sorted(ends, key=lambda r: r.pos)
            if first.rname != second.rname:
                continue
            same_strand = first.flags.is_reverse == second.flags.is_reverse
            insert = second.reference_end - first.pos + 1
            if same_strand:
                discordant.append(
                    _DiscordantPair(
                        first.rname, first.reference_end, second.pos,
                        insert, INVERSION,
                    )
                )
            elif insert > deletion_threshold and not first.flags.is_reverse:
                discordant.append(
                    _DiscordantPair(
                        first.rname, first.reference_end, second.pos,
                        insert, DELETION,
                    )
                )
        return discordant

    # -- clustering ------------------------------------------------------------
    def _cluster(
        self, pairs: List[_DiscordantPair], kind: str, mean_insert: float
    ) -> List[StructuralVariantCall]:
        calls: List[StructuralVariantCall] = []
        pairs = sorted(pairs, key=lambda p: (p.contig, p.left_end))
        cluster: List[_DiscordantPair] = []

        def flush() -> None:
            if len(cluster) < self.config.min_support:
                cluster.clear()
                return
            contig = cluster[0].contig
            # The SV lies between the innermost read ends of the cluster.
            start = max(p.left_end for p in cluster) + 1
            end = min(p.right_start for p in cluster) - 1
            if end <= start:
                mid = (start + end) // 2
                start, end = mid, mid + 1
            size = sum(p.insert for p in cluster) / len(cluster) - mean_insert
            calls.append(
                StructuralVariantCall(
                    contig, start, end, kind, len(cluster), max(size, 0.0)
                )
            )
            cluster.clear()

        for pair in pairs:
            if cluster and (
                pair.contig != cluster[-1].contig
                or pair.left_end - cluster[-1].left_end > self.config.cluster_slack
            ):
                flush()
            cluster.append(pair)
        flush()
        return calls
