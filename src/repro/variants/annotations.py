"""Variant-site annotations used by the accuracy study (Tables 9/10).

MQ (RMS mapping quality), DP (read depth), FS (Fisher's strand bias)
and AB (allele balance) — the standard bioinformatics quality metrics
the paper evaluates on concordant vs pipeline-unique variants.
"""

from __future__ import annotations

import math
from typing import List

from repro.variants.pileup import PileupColumn


def rms_mapping_quality(mapqs: List[int]) -> float:
    """Root-mean-square of mapping qualities at the site (MQ)."""
    if not mapqs:
        return 0.0
    return math.sqrt(sum(q * q for q in mapqs) / len(mapqs))


def allele_balance(ref_count: int, alt_count: int) -> float:
    """AB = #ALT / (#REF + #ALT); ~0.5 for a clean het, ~1.0 for hom."""
    total = ref_count + alt_count
    if total == 0:
        return 0.0
    return alt_count / total


def _log_comb(n: int, k: int) -> float:
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def fisher_exact_two_tailed(a: int, b: int, c: int, d: int) -> float:
    """Two-tailed Fisher's exact test p-value for a 2x2 table.

    Table layout::

        ref_forward (a)   ref_reverse (b)
        alt_forward (c)   alt_reverse (d)

    Implemented directly from the hypergeometric distribution so the
    library needs no SciPy dependency.
    """
    row1 = a + b
    row2 = c + d
    col1 = a + c
    n = a + b + c + d
    if n == 0:
        return 1.0

    def log_p(x: int) -> float:
        return (
            _log_comb(row1, x)
            + _log_comb(row2, col1 - x)
            - _log_comb(n, col1)
        )

    lo = max(0, col1 - row2)
    hi = min(col1, row1)
    observed = log_p(a)
    total = 0.0
    for x in range(lo, hi + 1):
        candidate = log_p(x)
        if candidate <= observed + 1e-9:
            total += math.exp(candidate)
    return min(1.0, total)


def fisher_strand(ref_fwd: int, ref_rev: int, alt_fwd: int, alt_rev: int) -> float:
    """FS: Phred-scaled p-value of strand bias (0 = unbiased)."""
    p_value = fisher_exact_two_tailed(ref_fwd, ref_rev, alt_fwd, alt_rev)
    p_value = max(p_value, 1e-300)
    return round(-10.0 * math.log10(p_value), 3)


def column_annotations(
    column: PileupColumn, ref_base: str, alt_base: str
) -> dict:
    """All site annotations for a SNP call at one pileup column."""
    ref_fwd = ref_rev = alt_fwd = alt_rev = 0
    mapqs = []
    for entry in column.entries:
        mapqs.append(entry.mapq)
        if entry.base == ref_base:
            if entry.reverse:
                ref_rev += 1
            else:
                ref_fwd += 1
        elif entry.base == alt_base:
            if entry.reverse:
                alt_rev += 1
            else:
                alt_fwd += 1
    ref_count = ref_fwd + ref_rev
    alt_count = alt_fwd + alt_rev
    return {
        "DP": float(column.depth),
        "MQ": round(rms_mapping_quality(mapqs), 3),
        "FS": fisher_strand(ref_fwd, ref_rev, alt_fwd, alt_rev),
        "AB": round(allele_balance(ref_count, alt_count), 4),
    }
