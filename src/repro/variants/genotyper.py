"""UnifiedGenotyperLite: per-site Bayesian diploid genotyping.

Calls SNPs and small insertion/deletion variants (Table 2 step v1) from
pileup columns with GATK-style diploid genotype likelihoods.  The
paper's GDPT runs it behind a non-overlapping chromosome range
partitioner (section 3.2, "Range Partitioning").
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from repro.formats.sam import SamRecord
from repro.formats.vcf import VariantRecord
from repro.genome.reference import ReferenceGenome
from repro.genome.regions import GenomicInterval
from repro.variants.annotations import column_annotations, rms_mapping_quality
from repro.variants.pileup import PileupColumn, PileupConfig, build_pileup

_LOG10_THIRD = math.log10(1.0 / 3.0)


class GenotyperConfig:
    """Priors and thresholds of the genotyper."""

    def __init__(
        self,
        het_prior: float = 1.0e-3,
        hom_prior: float = 5.0e-4,
        min_call_quality: float = 30.0,
        min_depth: int = 4,
        min_alt_count: int = 2,
        min_indel_support: int = 3,
        min_indel_fraction: float = 0.20,
        indel_error_rate: float = 1.0e-2,
        max_quality: float = 3000.0,
        pileup: Optional[PileupConfig] = None,
    ):
        self.het_prior = het_prior
        self.hom_prior = hom_prior
        self.min_call_quality = min_call_quality
        self.min_depth = min_depth
        self.min_alt_count = min_alt_count
        self.min_indel_support = min_indel_support
        self.min_indel_fraction = min_indel_fraction
        self.indel_error_rate = indel_error_rate
        self.max_quality = max_quality
        self.pileup = pileup or PileupConfig()


def _normalize_log10(log_likelihoods: List[float]) -> List[float]:
    peak = max(log_likelihoods)
    weights = [10.0 ** (ll - peak) for ll in log_likelihoods]
    total = sum(weights)
    return [w / total for w in weights]


def diploid_snp_posteriors(
    column: PileupColumn, ref_base: str, alt_base: str, config: GenotyperConfig
) -> Tuple[float, float, float]:
    """Posterior P(RR), P(RA), P(AA) at one column."""
    log_rr = math.log10(max(1.0 - config.het_prior - config.hom_prior, 1e-12))
    log_ra = math.log10(config.het_prior)
    log_aa = math.log10(config.hom_prior)
    for entry in column.entries:
        error = 10.0 ** (-entry.quality / 10.0)
        p_ref = (1.0 - error) if entry.base == ref_base else error / 3.0
        p_alt = (1.0 - error) if entry.base == alt_base else error / 3.0
        log_rr += math.log10(max(p_ref, 1e-12))
        log_aa += math.log10(max(p_alt, 1e-12))
        log_ra += math.log10(max(0.5 * p_ref + 0.5 * p_alt, 1e-12))
    posterior = _normalize_log10([log_rr, log_ra, log_aa])
    return posterior[0], posterior[1], posterior[2]


def diploid_binary_posteriors(
    support: int, against: int, error_rate: float, config: GenotyperConfig
) -> Tuple[float, float, float]:
    """Posteriors for a binary allele (used for indels)."""
    log_rr = math.log10(max(1.0 - config.het_prior - config.hom_prior, 1e-12))
    log_ra = math.log10(config.het_prior)
    log_aa = math.log10(config.hom_prior)
    log_err = math.log10(error_rate)
    log_ok = math.log10(1.0 - error_rate)
    log_half = math.log10(0.5)
    log_rr += against * log_ok + support * log_err
    log_aa += support * log_ok + against * log_err
    log_ra += (support + against) * (log_half + math.log10(1.0))
    posterior = _normalize_log10([log_rr, log_ra, log_aa])
    return posterior[0], posterior[1], posterior[2]


def _phred(p_no_variant: float, cap: float) -> float:
    p_no_variant = max(p_no_variant, 10.0 ** (-cap / 10.0))
    return -10.0 * math.log10(p_no_variant)


def call_column(
    column: PileupColumn, reference: ReferenceGenome, config: GenotyperConfig
) -> List[VariantRecord]:
    """Emit SNP/indel calls for one pileup column (possibly none)."""
    calls: List[VariantRecord] = []
    if column.depth < config.min_depth:
        return calls
    ref_base = reference.base_at(column.contig, column.pos)

    # --- SNP ---
    counts = column.base_counts()
    alt_candidates = [
        (count, base) for base, count in counts.items() if base != ref_base
    ]
    if alt_candidates:
        alt_count, alt_base = max(alt_candidates)
        if alt_count >= config.min_alt_count:
            p_rr, p_ra, p_aa = diploid_snp_posteriors(
                column, ref_base, alt_base, config
            )
            quality = _phred(p_rr, config.max_quality)
            if quality >= config.min_call_quality:
                genotype = "0/1" if p_ra >= p_aa else "1/1"
                info = column_annotations(column, ref_base, alt_base)
                calls.append(
                    VariantRecord(
                        column.contig, column.pos, ref_base, alt_base,
                        qual=round(quality, 2), genotype=genotype, info=info,
                    )
                )

    # --- indels anchored at this column ---
    indels = column.indel_observations()
    if indels:
        (ref_allele, alt_allele), support = max(
            indels.items(), key=lambda item: item[1]
        )
        fraction = support / column.depth
        if (
            support >= config.min_indel_support
            and fraction >= config.min_indel_fraction
        ):
            p_rr, p_ra, p_aa = diploid_binary_posteriors(
                support, column.depth - support, config.indel_error_rate, config
            )
            quality = _phred(p_rr, config.max_quality)
            if quality >= config.min_call_quality:
                genotype = "0/1" if p_ra >= p_aa else "1/1"
                mapqs = [entry.mapq for entry in column.entries]
                info = {
                    "DP": float(column.depth),
                    "MQ": round(rms_mapping_quality(mapqs), 3),
                    "FS": 0.0,
                    "AB": round(fraction, 4),
                }
                calls.append(
                    VariantRecord(
                        column.contig, column.pos, ref_allele, alt_allele,
                        qual=round(quality, 2), genotype=genotype, info=info,
                    )
                )
    return calls


class UnifiedGenotyperLite:
    """Per-site caller over (a region of) a coordinate-sorted dataset."""

    name = "UnifiedGenotyper"

    def __init__(self, reference: ReferenceGenome,
                 config: Optional[GenotyperConfig] = None):
        self.reference = reference
        self.config = config or GenotyperConfig()

    def call(
        self,
        records: Iterable[SamRecord],
        interval: Optional[GenomicInterval] = None,
    ) -> List[VariantRecord]:
        """Call variants across all pileup columns (in an interval)."""
        calls: List[VariantRecord] = []
        for column in build_pileup(
            records, self.reference, interval, self.config.pileup
        ):
            calls.extend(call_column(column, self.reference, self.config))
        return calls
