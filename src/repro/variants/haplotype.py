"""HaplotypeCallerLite: greedy sequential segmentation + local calling.

Mirrors the access pattern the paper singles out (section 3.2, "Range
Partitioning"): the caller walks every position of the genome,
(1) computes a statistical *activity* measure over the reads that
overlap the position, (2) greedily extends the current segment (the
*active window*) based on the recent trend of that measure subject to
minimum/maximum window-length constraints, and (3) detects mutations
inside each window.

Because windows are defined greedily and sequentially, naive position
partitioning changes window boundaries; :func:`required_overlap` gives
the overlap margin that makes an overlapping range partition safe.

A second nondeterminism source is modelled after GATK's depth
downsampling: when a window's depth exceeds the cap, reads are dropped
at random from an invocation-seeded RNG — so per-chromosome parallel
invocations can differ slightly from one serial whole-genome run even
with safe boundaries, exactly the paper's observation that "even
chromosome-level partitioning gives slightly different results".
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.formats.sam import SamRecord
from repro.formats.vcf import VariantRecord
from repro.genome.reference import ReferenceGenome
from repro.genome.regions import GenomicInterval
from repro.variants.genotyper import GenotyperConfig, call_column
from repro.variants.pileup import (
    PileupColumn,
    build_pileup,
    record_passes,
)


class HaplotypeCallerConfig:
    """Segmentation and downsampling parameters."""

    def __init__(
        self,
        activity_threshold: float = 0.12,
        extension_threshold: float = 0.05,
        trend_window: int = 10,
        min_window: int = 12,
        max_window: int = 240,
        downsample_depth: int = 80,
        seed: int = 11,
        genotyper: Optional[GenotyperConfig] = None,
    ):
        self.activity_threshold = activity_threshold
        self.extension_threshold = extension_threshold
        self.trend_window = trend_window
        self.min_window = min_window
        self.max_window = max_window
        self.downsample_depth = downsample_depth
        self.seed = seed
        self.genotyper = genotyper or GenotyperConfig()


def activity_score(column: PileupColumn, ref_base: str) -> float:
    """Fraction of evidence at a column that disagrees with the reference."""
    if column.depth == 0:
        return 0.0
    disagreeing = 0
    for entry in column.entries:
        if entry.base != ref_base or entry.indel is not None:
            disagreeing += 1
    return disagreeing / column.depth


def required_overlap(config: HaplotypeCallerConfig, margin: int = 10) -> int:
    """Overlap needed so a window never depends on unseen positions.

    A window can extend at most ``max_window`` positions past its start
    and the trend statistic looks back ``trend_window`` positions, so an
    overlap of ``max_window + trend_window + margin`` bounds the error
    probability of the overlapping partitioning scheme (the guarantee
    sketched in section 3.2).
    """
    return config.max_window + config.trend_window + margin


class HaplotypeCallerLite:
    """Active-window small-variant caller."""

    name = "HaplotypeCaller"

    def __init__(self, reference: ReferenceGenome,
                 config: Optional[HaplotypeCallerConfig] = None):
        self.reference = reference
        self.config = config or HaplotypeCallerConfig()

    # -- public API --------------------------------------------------------
    def call(
        self,
        records: Iterable[SamRecord],
        interval: Optional[GenomicInterval] = None,
        emit_interval: Optional[GenomicInterval] = None,
    ) -> List[VariantRecord]:
        """Call variants, optionally restricted to ``interval``.

        ``emit_interval`` further restricts which calls are *reported*
        — the overlapping range partitioner analyses the padded
        interval but emits only the core, so windows near partition
        edges are computed from complete evidence.
        """
        records = list(records)
        records = self._downsample(records, interval)
        columns = list(
            build_pileup(records, self.reference, interval,
                         self.config.genotyper.pileup)
        )
        windows = self.active_windows(columns)
        calls: List[VariantRecord] = []
        columns_by_pos: Dict[Tuple[str, int], PileupColumn] = {
            (column.contig, column.pos): column for column in columns
        }
        for window in windows:
            for pos in range(window.start, window.end):
                column = columns_by_pos.get((window.contig, pos))
                if column is None:
                    continue
                for call in call_column(column, self.reference,
                                        self.config.genotyper):
                    if emit_interval is not None and not emit_interval.contains(
                        call.chrom, call.pos
                    ):
                        continue
                    calls.append(call)
        return calls

    # -- greedy sequential segmentation ---------------------------------------
    def active_windows(self, columns: List[PileupColumn]) -> List[GenomicInterval]:
        """Walk all positions and greedily define active windows."""
        windows: List[GenomicInterval] = []
        config = self.config
        current_contig: Optional[str] = None
        window_start: Optional[int] = None
        last_pos: Optional[int] = None
        recent: List[float] = []

        def close(end_pos: int) -> None:
            nonlocal window_start
            if window_start is None:
                return
            length = end_pos - window_start + 1
            if length < config.min_window:
                end_pos = window_start + config.min_window - 1
            windows.append(
                GenomicInterval(current_contig, window_start, end_pos + 1)
            )
            window_start = None

        for column in columns:
            ref_base = self.reference.base_at(column.contig, column.pos)
            score = activity_score(column, ref_base)
            if column.contig != current_contig:
                if window_start is not None and last_pos is not None:
                    close(last_pos)
                current_contig = column.contig
                recent = []
            recent.append(score)
            if len(recent) > config.trend_window:
                recent.pop(0)
            trend = sum(recent) / len(recent)

            if window_start is None:
                if score >= config.activity_threshold:
                    window_start = column.pos
            else:
                window_len = column.pos - window_start + 1
                gap = last_pos is not None and column.pos - last_pos > config.trend_window
                if window_len >= config.max_window or gap:
                    close(last_pos if gap else column.pos)
                    if score >= config.activity_threshold:
                        window_start = column.pos
                elif (
                    trend < config.extension_threshold
                    and window_len >= config.min_window
                ):
                    close(column.pos)
            last_pos = column.pos
        if window_start is not None and last_pos is not None:
            close(last_pos)
        return windows

    # -- downsampling -------------------------------------------------------------
    def _downsample(
        self,
        records: List[SamRecord],
        interval: Optional[GenomicInterval],
    ) -> List[SamRecord]:
        """Cap coverage by randomly dropping reads (GATK-style).

        The RNG is seeded from this invocation's first usable record, so
        the behaviour is deterministic per dataset yet differs between
        one whole-genome run and per-partition runs.
        """
        config = self.config
        usable = [
            record
            for record in records
            if record_passes(record, config.genotyper.pileup)
            and (interval is None or record.rname == interval.contig)
        ]
        if not usable:
            return records
        read_len = max(record.read_length for record in usable)
        approx_span = self._span(usable)
        if approx_span <= 0:
            return records
        mean_depth = sum(r.read_length for r in usable) / approx_span
        if mean_depth <= config.downsample_depth:
            return records
        keep_fraction = config.downsample_depth / mean_depth
        rng = random.Random(
            zlib.crc32(f"{config.seed}|{usable[0].qname}|{len(usable)}".encode())
        )
        kept = [
            record
            for record in records
            if not record_passes(record, config.genotyper.pileup)
            or rng.random() < keep_fraction
        ]
        del read_len
        return kept

    @staticmethod
    def _span(records: List[SamRecord]) -> int:
        spans: Dict[str, Tuple[int, int]] = {}
        for record in records:
            lo, hi = spans.get(record.rname, (record.pos, record.reference_end))
            spans[record.rname] = (
                min(lo, record.pos), max(hi, record.reference_end)
            )
        return sum(hi - lo + 1 for lo, hi in spans.values())
