"""Shared fixtures: one small synthetic dataset reused across the suite.

Session-scoped because building the reference index and aligning reads
are the expensive steps; tests must treat these fixtures as read-only
(copy records before mutating).
"""

from __future__ import annotations

import pytest

from repro.align import AlignerConfig, PairedEndAligner, ReferenceIndex
from repro.genome import (
    DonorSimulationConfig,
    ReadSimulationConfig,
    ReferenceSimulationConfig,
    simulate_donor,
    simulate_reads,
    simulate_reference,
)


@pytest.fixture(scope="session")
def reference():
    return simulate_reference(
        ReferenceSimulationConfig(
            contig_lengths={"chr1": 9000, "chr2": 7000}, seed=101
        )
    )


@pytest.fixture(scope="session")
def donor(reference):
    return simulate_donor(
        reference, DonorSimulationConfig(snp_rate=2.0e-3, indel_rate=2.0e-4, seed=102)
    )


@pytest.fixture(scope="session")
def read_data(donor):
    """(pairs, fragments) at modest coverage."""
    return simulate_reads(
        donor, ReadSimulationConfig(coverage=12.0, seed=103)
    )


@pytest.fixture(scope="session")
def pairs(read_data):
    return read_data[0]


@pytest.fixture(scope="session")
def fragments(read_data):
    return read_data[1]


@pytest.fixture(scope="session")
def ref_index(reference):
    return ReferenceIndex(reference)


@pytest.fixture(scope="session")
def aligner(ref_index):
    return PairedEndAligner(ref_index, AlignerConfig(seed=7))


@pytest.fixture(scope="session")
def aligned(aligner, pairs):
    """Serial alignment of the whole dataset (read-only!)."""
    return aligner.align_all(pairs, batch_size=400)


@pytest.fixture(scope="session")
def sam_header(aligner):
    return aligner.header()


@pytest.fixture()
def aligned_copy(aligned):
    """A mutable copy of the aligned records for in-place stages."""
    return [record.copy() for record in aligned]
