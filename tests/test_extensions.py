"""Tests for the future-work extensions (paper Appendix C):

* the safe-partitioning validator (question 1);
* the pipeline execution-plan optimizer (question 4);
* the Round 5 variants: Unified Genotyper by chromosome and the
  fine-grained overlapping Haplotype Caller partitioning.
"""

import pytest

from repro.cleaning.clean_sam import CleanSam
from repro.cleaning.duplicates import MarkDuplicates
from repro.cluster.costs import NA12878, CostModel
from repro.cluster.hardware import CLUSTER_B
from repro.cluster.optimizer import PipelineOptimizer, PlanKnobs
from repro.errors import SimulationError
from repro.gdpt.partitioner import GroupPartitioner, read_name_key
from repro.gdpt.safety import (
    COUNT_SAFE,
    SAFE,
    UNSAFE,
    SafePartitioningValidator,
    equal_duplicate_counts,
    equal_record_counts,
)
from repro.gdpt.partitioner import split_pairs_contiguously
from repro.hdfs.filesystem import Hdfs
from repro.mapreduce.engine import MapReduceEngine
from repro.variants.haplotype import HaplotypeCallerConfig
from repro.wrappers.rounds import GesallRounds


# ---------------------------------------------------------------------------
# Safe-partitioning validator
# ---------------------------------------------------------------------------

class TestSafePartitioningValidator:
    def record_partitioner(self, n):
        def split(records):
            return GroupPartitioner(read_name_key, n).split(records)
        return split

    def chunk_partitioner(self, n):
        def split(records):
            size = max(1, len(records) // n)
            return [records[i : i + size] for i in range(0, len(records), size)]
        return split

    def test_clean_sam_is_safe_under_any_partitioning(self, sam_header,
                                                      aligned):
        """CleanSam is record-local: every scheme is SAFE."""
        validator = SafePartitioningValidator(
            CleanSam(), self.chunk_partitioner(7)
        )
        verdict = validator.validate(sam_header, aligned[:600])
        assert verdict.classification == SAFE
        assert verdict.is_acceptable

    def test_markdup_unsafe_under_arbitrary_chunking(self, sam_header,
                                                     aligned):
        """Chunking that splits position groups breaks MarkDuplicates."""
        validator = SafePartitioningValidator(
            MarkDuplicates(), self.chunk_partitioner(11)
        )
        verdict = validator.validate(sam_header, aligned[:800])
        assert verdict.classification == UNSAFE

    def test_markdup_count_safe_under_position_grouping(self, sam_header,
                                                        aligned):
        """Grouping by the duplicate position key: only tie choices may
        differ, duplicate counts preserved -> COUNT_SAFE (or SAFE)."""
        from repro.cleaning.duplicates import fragment_key

        def position_split(records):
            groups = {}
            for record in records:
                if record.flags.is_unmapped or record.flags.is_mate_unmapped:
                    key = ("special",)
                else:
                    key = (fragment_key(record)[0],
                           fragment_key(record)[1] // 2000)
                groups.setdefault(record.qname, []).append(record)
            # Group whole pairs by the pair's leftmost bucket.
            buckets = {}
            for qname, pair in groups.items():
                anchor = min(
                    (r.pos for r in pair if not r.flags.is_unmapped),
                    default=0,
                )
                buckets.setdefault(anchor // 4000, []).extend(pair)
            return list(buckets.values())

        validator = SafePartitioningValidator(
            MarkDuplicates(), position_split,
            ignore_fields=("duplicate_flag",),
            invariants={
                "duplicate_counts": equal_duplicate_counts,
                "record_counts": equal_record_counts,
            },
        )
        verdict = validator.validate(sam_header, aligned[:800])
        assert verdict.classification in (SAFE, COUNT_SAFE)

    def test_lost_records_detected(self, sam_header, aligned):
        def lossy_split(records):
            return [records[: len(records) // 2]]  # drops half

        validator = SafePartitioningValidator(CleanSam(), lossy_split)
        verdict = validator.validate(sam_header, aligned[:100])
        assert verdict.classification == UNSAFE
        assert "lost" in verdict.notes


# ---------------------------------------------------------------------------
# Pipeline optimizer
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def optimizer():
    return PipelineOptimizer(CLUSTER_B, CostModel(), NA12878)


class TestPipelineOptimizer:
    def test_evaluate_plan(self, optimizer):
        knobs = PlanKnobs(16, 1, 64, "opt", 16, 0.05)
        evaluation = optimizer.evaluate(knobs)
        assert evaluation.wall_seconds > 0
        assert 0 < evaluation.cluster_efficiency <= 1.0

    def test_opt_beats_reg_in_turnaround(self, optimizer):
        opt = optimizer.evaluate(PlanKnobs(16, 1, 64, "opt", 16, 0.05))
        reg = optimizer.evaluate(PlanKnobs(16, 1, 64, "reg", 16, 0.05))
        assert opt.wall_seconds < reg.wall_seconds

    def test_minimize_turnaround_picks_fastest(self, optimizer):
        plans = [
            PlanKnobs(16, 1, 64, "opt", 16, 0.05),
            PlanKnobs(4, 4, 64, "reg", 8, 0.05),
        ]
        best = optimizer.minimize_turnaround(plans=plans)
        assert best.knobs.markdup_mode == "opt"
        assert best.knobs.align_mappers == 16

    def test_efficiency_floor_respected(self, optimizer):
        plans = [PlanKnobs(16, 1, 64, "opt", 16, 0.80)]
        evaluation = optimizer.evaluate(plans[0])
        floor = evaluation.cluster_efficiency + 0.2
        if floor < 1.0:
            with pytest.raises(SimulationError):
                optimizer.minimize_turnaround(min_efficiency=floor,
                                              plans=plans)

    def test_deadline_respected(self, optimizer):
        plans = [PlanKnobs(16, 1, 64, "opt", 16, 0.05)]
        evaluation = optimizer.evaluate(plans[0])
        best = optimizer.maximize_efficiency(
            deadline_seconds=evaluation.wall_seconds * 1.01, plans=plans
        )
        assert best.wall_seconds <= evaluation.wall_seconds * 1.01
        with pytest.raises(SimulationError):
            optimizer.maximize_efficiency(
                deadline_seconds=evaluation.wall_seconds * 0.5, plans=plans
            )

    def test_candidate_plans_cover_knobs(self, optimizer):
        plans = optimizer.candidate_plans()
        assert len(plans) >= 16
        assert {p.markdup_mode for p in plans} == {"opt", "reg"}
        assert {p.slowstart for p in plans} == {0.05, 0.80}


# ---------------------------------------------------------------------------
# Round 5 variants (functional)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sorted_partitions(reference, aligner, pairs):
    hdfs = Hdfs(["n0", "n1", "n2"], replication=2, block_size=64 * 1024)
    engine = MapReduceEngine(nodes=hdfs.nodes)
    rounds = GesallRounds(hdfs, engine, aligner, reference, chunk_bytes=8 * 1024)
    r1 = rounds.round1_alignment(split_pairs_contiguously(list(pairs), 5))
    r2 = rounds.round2_cleaning(r1, out_dir="/x2", num_reducers=3)
    r3 = rounds.round3_mark_duplicates(r2, mode="opt", out_dir="/x3",
                                       num_reducers=3)
    r4 = rounds.round4_sort_index(r3, out_dir="/x4")
    return rounds, r4


class TestRound5Variants:
    def test_unified_genotyper_round(self, sorted_partitions, donor):
        rounds, r4 = sorted_partitions
        variants = rounds.round5_unified_genotyper(r4)
        assert variants
        truth = donor.truth_sites()
        hits = sum(1 for v in variants if v.site_key() in truth)
        assert hits / len(truth) > 0.4

    def test_finegrained_matches_chromosome_partitioning(
        self, sorted_partitions
    ):
        """The correctness guarantee of the overlapping scheme: with the
        safety overlap, fine-grained partitioning produces the same
        calls as chromosome-level partitioning."""
        rounds, r4 = sorted_partitions
        config = HaplotypeCallerConfig()
        coarse = rounds.round5_haplotype_caller(r4, config)
        fine = rounds.round5_haplotype_caller_finegrained(
            r4, segment_length=2500, hc_config=config
        )
        assert {v.site_key() for v in fine} == {v.site_key() for v in coarse}

    def test_finegrained_uses_more_partitions(self, sorted_partitions,
                                              reference):
        rounds, r4 = sorted_partitions
        rounds.round5_haplotype_caller_finegrained(r4, segment_length=2500)
        result = rounds.results["round5_finegrained"]
        assert len(result.history.reduces()) > len(reference.contig_names())

    def test_safety_overlap_costs_replication(self, sorted_partitions):
        """The price of the correctness guarantee: the safe overlap
        replicates boundary reads into multiple partitions, shuffling
        more records than a zero-overlap split would (the trade-off
        section 3.2 describes)."""
        from repro.mapreduce import counters as C
        rounds, r4 = sorted_partitions
        config = HaplotypeCallerConfig()
        rounds.round5_haplotype_caller_finegrained(
            r4, segment_length=2500, hc_config=config, overlap=0
        )
        no_overlap = rounds.results["round5_finegrained"].counters.get(
            C.SHUFFLED_RECORDS
        )
        rounds.round5_haplotype_caller_finegrained(
            r4, segment_length=2500, hc_config=config
        )
        safe = rounds.results["round5_finegrained"].counters.get(
            C.SHUFFLED_RECORDS
        )
        assert safe > no_overlap
