"""Unit tests for the CIGAR algebra."""

import pytest

from repro.errors import CigarError
from repro.formats.cigar import (
    Cigar,
    reference_end,
    unclipped_end,
    unclipped_five_prime,
    unclipped_start,
)


class TestParsing:
    def test_parse_simple(self):
        cigar = Cigar.parse("100M")
        assert cigar.ops == ((100, "M"),)

    def test_parse_multi_op(self):
        cigar = Cigar.parse("5S90M2I3M")
        assert cigar.ops == ((5, "S"), (90, "M"), (2, "I"), (3, "M"))

    def test_parse_star_is_empty(self):
        assert len(Cigar.parse("*")) == 0

    def test_parse_empty_string(self):
        assert len(Cigar.parse("")) == 0

    def test_roundtrip_str(self):
        text = "3S47M2D50M5H"
        assert str(Cigar.parse(text)) == text

    def test_empty_renders_star(self):
        assert str(Cigar([])) == "*"

    def test_invalid_op_rejected(self):
        with pytest.raises(CigarError):
            Cigar.parse("10Q")

    def test_garbage_rejected(self):
        with pytest.raises(CigarError):
            Cigar.parse("10M5")

    def test_negative_length_rejected(self):
        with pytest.raises(CigarError):
            Cigar([(0, "M")])

    def test_equality_and_hash(self):
        assert Cigar.parse("10M") == Cigar.parse("10M")
        assert hash(Cigar.parse("10M")) == hash(Cigar.parse("10M"))
        assert Cigar.parse("10M") != Cigar.parse("11M")


class TestLengths:
    def test_query_length_counts_m_i_s(self):
        cigar = Cigar.parse("5S90M2I3D")
        assert cigar.query_length() == 5 + 90 + 2

    def test_reference_length_counts_m_d_n(self):
        cigar = Cigar.parse("5S90M2I3D10N")
        assert cigar.reference_length() == 90 + 3 + 10

    def test_hard_clips_consume_nothing(self):
        cigar = Cigar.parse("5H100M5H")
        assert cigar.query_length() == 100
        assert cigar.reference_length() == 100

    def test_validate_against_sequence_ok(self):
        Cigar.parse("4S96M").validate_against_sequence("A" * 100)

    def test_validate_against_sequence_mismatch(self):
        with pytest.raises(CigarError):
            Cigar.parse("90M").validate_against_sequence("A" * 100)

    def test_validate_star_sequence_exempt(self):
        Cigar.parse("90M").validate_against_sequence("*")


class TestClipping:
    def test_leading_clip_soft(self):
        assert Cigar.parse("7S93M").leading_clip() == 7

    def test_leading_clip_hard_and_soft(self):
        assert Cigar.parse("2H5S93M").leading_clip() == 7

    def test_trailing_clip(self):
        assert Cigar.parse("93M4S3H").trailing_clip() == 7

    def test_no_clip(self):
        assert Cigar.parse("100M").leading_clip() == 0
        assert Cigar.parse("100M").trailing_clip() == 0

    def test_leading_soft_clip_excludes_hard(self):
        assert Cigar.parse("2H5S93M").leading_soft_clip() == 5

    def test_fully_clipped(self):
        assert Cigar.parse("100S").is_fully_clipped()
        assert not Cigar.parse("1M99S").is_fully_clipped()


class TestUnclippedEnds:
    def test_unclipped_start_no_clip(self):
        assert unclipped_start(500, Cigar.parse("100M")) == 500

    def test_unclipped_start_with_clip(self):
        assert unclipped_start(500, Cigar.parse("5S95M")) == 495

    def test_unclipped_end_no_clip(self):
        assert unclipped_end(500, Cigar.parse("100M")) == 599

    def test_unclipped_end_with_trailing_clip(self):
        assert unclipped_end(500, Cigar.parse("95M5S")) == 599

    def test_unclipped_end_with_deletion(self):
        assert unclipped_end(500, Cigar.parse("50M10D50M")) == 609

    def test_five_prime_forward(self):
        cigar = Cigar.parse("3S97M")
        assert unclipped_five_prime(100, cigar, reverse=False) == 97

    def test_five_prime_reverse(self):
        cigar = Cigar.parse("97M3S")
        assert unclipped_five_prime(100, cigar, reverse=True) == 100 + 96 + 3

    def test_clipping_invariance(self):
        # Two placements of the same physical fragment must agree on
        # the 5' unclipped end whether or not the aligner clipped.
        full = unclipped_five_prime(100, Cigar.parse("100M"), False)
        clipped = unclipped_five_prime(104, Cigar.parse("4S96M"), False)
        assert full == clipped

    def test_reference_end_basic(self):
        assert reference_end(100, Cigar.parse("100M")) == 199

    def test_reference_end_empty_cigar(self):
        assert reference_end(100, Cigar([])) == 100
