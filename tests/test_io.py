"""Durable-I/O layer: contract, fault injection, crash-consistency.

Covers the `repro.io` stack bottom-up: the frozen IoPolicy, the
LocalIO durability contract (atomic writes, self-healing appends,
idempotent unlinks, transient retry), FaultIO's seeded torn-write /
ENOSPC / EIO / short-read / slow-I/O injection, the degraded-mode
spill routing (fallback directories, replica shedding), the chaos
grammar for the four new event kinds, and the headline crash-
consistency fuzz gate over every durable component.
"""

from __future__ import annotations

import errno
import os

import pytest

from repro.chaos.plan import (
    Eio,
    Enospc,
    FaultPlan,
    SlowIo,
    TornWrite,
    parse_event,
)
from repro.errors import (
    DurableIoError,
    IoTimeoutError,
    MapReduceError,
    ShuffleError,
    StorageFullError,
)
from repro.io.crashfuzz import (
    COMPONENTS,
    CrashPoint,
    RecordingIO,
    crash_points,
    disk_image,
    materialize,
    run_fuzz_gate,
)
from repro.io.faults import FaultIO, ShortRead, build_io
from repro.io.layer import TMP_SUFFIX, DirectIO, IoStats, LocalIO
from repro.io.policy import DEFAULT_IO_POLICY, IoPolicy
from repro.mapreduce.policy import ExecutionPolicy
from repro.pipeline.checkpoint import CheckpointStore, LocalDirectoryBackend
from repro.pipeline.wal import FrameLog, JobWal
from repro.shuffle.store import DiskSegmentBackend, SegmentStore


# ---------------------------------------------------------------------------
# IoPolicy
# ---------------------------------------------------------------------------
class TestIoPolicy:
    def test_defaults_are_frozen_and_sane(self):
        policy = IoPolicy()
        assert policy.retries == 2
        assert policy.fsync is True
        assert policy.spill_dirs == ()
        with pytest.raises(Exception):
            policy.retries = 5  # frozen dataclass

    def test_validation(self):
        with pytest.raises(DurableIoError):
            IoPolicy(retries=-1)
        with pytest.raises(DurableIoError):
            IoPolicy(retry_backoff=-0.1)
        with pytest.raises(DurableIoError):
            IoPolicy(op_timeout=-1.0)
        with pytest.raises(DurableIoError):
            IoPolicy(segment_replicas=0)
        with pytest.raises(DurableIoError):
            IoPolicy(min_replicas=3, segment_replicas=2)

    def test_spill_dirs_list_coerced_to_tuple(self):
        policy = IoPolicy(spill_dirs=["/a", "/b"])
        assert policy.spill_dirs == ("/a", "/b")

    def test_retry_delay_deterministic_and_jittered(self):
        policy = IoPolicy(retry_jitter=0.5, seed=3)
        a = policy.retry_delay("write|/x", 1)
        b = policy.retry_delay("write|/x", 1)
        assert a == b
        assert a >= policy.backoff_delay(1)
        other = policy.retry_delay("write|/y", 1)
        assert other != a  # different op keys draw different jitter

    def test_execution_policy_resolves_io(self):
        assert ExecutionPolicy().resolved_io() is DEFAULT_IO_POLICY
        custom = IoPolicy(retries=5)
        assert ExecutionPolicy(io=custom).resolved_io() is custom


# ---------------------------------------------------------------------------
# LocalIO contract
# ---------------------------------------------------------------------------
class TestLocalIO:
    def test_write_read_roundtrip(self, tmp_path):
        io = LocalIO()
        target = str(tmp_path / "deep" / "dir" / "blob.bin")
        io.write_atomic(target, b"hello")
        assert io.read_bytes(target) == b"hello"
        assert io.stats.writes == 1
        assert io.stats.fsyncs == 1
        assert io.stats.dir_fsyncs == 1
        assert io.stats.bytes_written == 5

    def test_read_missing_returns_none(self, tmp_path):
        io = LocalIO()
        assert io.read_bytes(str(tmp_path / "nope")) is None

    def test_write_atomic_leaves_no_temp(self, tmp_path):
        io = LocalIO()
        target = str(tmp_path / "blob.bin")
        io.write_atomic(target, b"x" * 100)
        assert not os.path.exists(target + TMP_SUFFIX)

    def test_append_durable(self, tmp_path):
        io = LocalIO()
        target = str(tmp_path / "log")
        io.append_durable(target, b"aa")
        io.append_durable(target, b"bb")
        assert io.read_bytes(target) == b"aabb"
        assert io.stats.appends == 2

    def test_unlink_idempotent(self, tmp_path):
        io = LocalIO()
        target = str(tmp_path / "gone")
        io.write_atomic(target, b"x")
        io.unlink(target)
        io.unlink(target)  # already missing: still fine
        assert io.stats.unlinks == 2
        assert not os.path.exists(target)

    def test_fsync_ordering_write_then_rename_then_dirsync(self, tmp_path):
        """S2 audit: temp fsync strictly before rename, dir sync after."""
        calls = []

        class SpyIO(LocalIO):
            def _os_write(self, tmp, path, data):
                super()._os_write(tmp, path, data)
                calls.append("write+fsync-tmp")

            def _os_fsync_dir(self, parent):
                calls.append("fsync-dir")
                super()._os_fsync_dir(parent)

        real_replace = os.replace

        def spying_replace(src, dst):
            calls.append("rename")
            return real_replace(src, dst)

        io = SpyIO()
        target = str(tmp_path / "ordered.bin")
        os_replace = os.replace
        os.replace = spying_replace
        try:
            io.write_atomic(target, b"payload")
        finally:
            os.replace = os_replace
        assert calls == ["write+fsync-tmp", "rename", "fsync-dir"]

    def test_kill_between_rename_and_dirsync_leaves_complete_file(
        self, tmp_path
    ):
        """S2: a crash after the rename but before the directory sync
        must leave the destination complete (old or new, never torn)."""

        class KilledAfterRename(LocalIO):
            def _os_fsync_dir(self, parent):
                raise KeyboardInterrupt("killed between rename and dirsync")

        target = str(tmp_path / "blob.bin")
        LocalIO().write_atomic(target, b"old-bytes")
        io = KilledAfterRename()
        with pytest.raises(KeyboardInterrupt):
            io.write_atomic(target, b"new-bytes")
        with open(target, "rb") as handle:
            content = handle.read()
        assert content in (b"old-bytes", b"new-bytes")
        # A later attempt through a healthy layer converges.
        LocalIO().write_atomic(target, b"new-bytes")
        assert LocalIO().read_bytes(target) == b"new-bytes"

    def test_nontransient_error_wraps_as_durable_io_error(self, tmp_path):
        class BrokenIO(LocalIO):
            def _os_write(self, tmp, path, data):
                raise OSError(errno.EACCES, "permission denied")

        io = BrokenIO()
        with pytest.raises(DurableIoError, match="after 1 attempt"):
            io.write_atomic(str(tmp_path / "x"), b"data")

    def test_transient_errors_exhaust_retry_budget(self, tmp_path):
        class AlwaysEio(LocalIO):
            def _os_write(self, tmp, path, data):
                raise OSError(errno.EIO, "dead disk")

        io = AlwaysEio(policy=IoPolicy(retries=2))
        with pytest.raises(DurableIoError, match="after 3 attempt"):
            io.write_atomic(str(tmp_path / "x"), b"data")
        assert io.stats.retries == 2
        assert io.stats.backoff_charged_seconds > 0

    def test_direct_io_skips_the_contract(self, tmp_path):
        io = DirectIO()
        target = str(tmp_path / "raw.bin")
        io.write_atomic(target, b"abc")
        io.append_durable(target, b"def")
        assert io.read_bytes(target) == b"abcdef"
        assert io.stats.fsyncs == 0
        assert io.stats.dir_fsyncs == 0

    def test_stats_as_dict_uses_io_prefix(self):
        stats = IoStats()
        stats.writes = 3
        stats.slow_seconds = 1.25
        out = stats.as_dict()
        assert out["io.writes"] == 3
        assert out["io.slow_seconds"] == 1.25
        assert set(out) == {f"io.{name}" for name in IoStats.FIELDS}


# ---------------------------------------------------------------------------
# FaultIO injection
# ---------------------------------------------------------------------------
class TestFaultIO:
    def test_eio_on_write_absorbed_by_retry(self, tmp_path):
        io = FaultIO(IoPolicy(retries=2), events=(Eio("write"),))
        target = str(tmp_path / "blob.bin")
        io.write_atomic(target, b"payload")
        assert io.read_bytes(target) == b"payload"
        assert io.stats.eio == 1
        assert io.stats.retries == 1
        assert io.stats.transient_errors == 1

    def test_eio_on_read_absorbed_by_retry(self, tmp_path):
        io = FaultIO(IoPolicy(retries=2), events=(Eio("read"),))
        target = str(tmp_path / "blob.bin")
        io.write_atomic(target, b"payload")
        assert io.read_bytes(target) == b"payload"
        assert io.stats.eio == 1

    def test_eio_nth_targets_a_later_op(self, tmp_path):
        io = FaultIO(IoPolicy(retries=2), events=(Eio("write", nth=2),))
        io.write_atomic(str(tmp_path / "a"), b"1")  # unscathed
        assert io.stats.eio == 0
        io.write_atomic(str(tmp_path / "b"), b"2")  # injected, retried
        assert io.stats.eio == 1
        assert io.read_bytes(str(tmp_path / "b")) == b"2"

    def test_eio_without_retry_budget_is_terminal(self, tmp_path):
        io = FaultIO(IoPolicy(retries=0), events=(Eio("write"),))
        with pytest.raises(DurableIoError):
            io.write_atomic(str(tmp_path / "x"), b"data")

    def test_torn_append_healed_before_retry(self, tmp_path):
        io = FaultIO(
            IoPolicy(retries=2), events=(TornWrite("*journal*", at_byte=3),)
        )
        target = str(tmp_path / "journal.log")
        io.append_durable(target, b"first-")
        io.append_durable(target, b"second")
        # The torn 3 bytes were truncated back before the retry: no
        # damaged prefix survives in front of good bytes.
        assert io.read_bytes(target) == b"first-second"
        assert io.stats.torn_writes == 1
        assert io.stats.retries >= 1

    def test_torn_atomic_write_never_reaches_destination(self, tmp_path):
        io = FaultIO(
            IoPolicy(retries=2), events=(TornWrite("*blob*", at_byte=2),)
        )
        target = str(tmp_path / "blob.bin")
        io.write_atomic(target, b"full-payload")
        assert io.read_bytes(target) == b"full-payload"
        assert io.stats.torn_writes == 1

    def test_fault_matching_uses_logical_path_not_temp_name(self, tmp_path):
        # A glob anchored to the final name must fire even though the
        # bytes physically land in the .inflight temp file first.
        io = FaultIO(
            IoPolicy(retries=1), events=(Eio("write", path_glob="*.bin"),)
        )
        io.write_atomic(str(tmp_path / "seg.bin"), b"x")
        assert io.stats.eio == 1

    def test_enospc_is_typed_and_not_retried(self, tmp_path):
        io = FaultIO(IoPolicy(retries=5), events=(Enospc(4),))
        target = str(tmp_path / "big.bin")
        io.write_atomic(target, b"ok")  # 2 bytes of a 4-byte budget
        with pytest.raises(StorageFullError):
            io.write_atomic(target, b"xxx")  # would exceed the budget
        assert io.stats.enospc == 1
        assert io.stats.retries == 0  # a full disk stays full

    def test_short_read_retried(self, tmp_path):
        io = FaultIO(
            IoPolicy(retries=2), events=(ShortRead("*blob*", at_byte=2),)
        )
        target = str(tmp_path / "blob.bin")
        io.write_atomic(target, b"complete")
        assert io.read_bytes(target) == b"complete"
        assert io.stats.short_reads == 1
        assert io.stats.retries == 1

    def test_slow_io_charge_accounting(self, tmp_path):
        io = FaultIO(IoPolicy(), events=(SlowIo(0.5),))
        io.write_atomic(str(tmp_path / "x"), b"data")
        assert io.stats.slow_seconds == pytest.approx(0.5)
        io.read_bytes(str(tmp_path / "x"))
        assert io.stats.slow_seconds == pytest.approx(1.0)

    def test_op_timeout_raises_io_timeout(self, tmp_path):
        io = FaultIO(
            IoPolicy(op_timeout=0.1), events=(SlowIo(0.5),)
        )
        with pytest.raises(IoTimeoutError):
            io.write_atomic(str(tmp_path / "x"), b"data")
        assert io.stats.timeouts == 1

    def test_build_io_selects_fault_io_only_for_io_plans(self):
        plain = ExecutionPolicy()
        assert type(build_io(plain)) is LocalIO
        compute_plan = FaultPlan.demo(0, ["node00"])
        assert type(build_io(ExecutionPolicy(fault_plan=compute_plan))) \
            is LocalIO
        io_plan = FaultPlan(seed=0, events=(Eio("write"),))
        built = build_io(ExecutionPolicy(fault_plan=io_plan))
        assert isinstance(built, FaultIO)
        assert built.events == [Eio("write")]


# ---------------------------------------------------------------------------
# Chaos grammar for the four new event kinds (satellite S6)
# ---------------------------------------------------------------------------
class TestIoChaosGrammar:
    def test_parse_well_formed(self):
        assert parse_event("*wal*@13", "torn-write") == \
            TornWrite("*wal*", at_byte=13)
        assert parse_event("4096@*spill*", "enospc") == \
            Enospc(4096, path_glob="*spill*")
        assert parse_event("4096", "enospc") == Enospc(4096)
        assert parse_event("READ:3", "eio") == Eio("read", nth=3)
        assert parse_event("write", "eio") == Eio("write")
        assert parse_event("0.25@*queue*", "slow-io") == \
            SlowIo(0.25, path_glob="*queue*")

    def test_torn_write_errors_name_field_and_grammar(self):
        with pytest.raises(MapReduceError) as err:
            parse_event("no-byte-marker", "torn-write")
        assert "missing '@BYTE'" in str(err.value)
        assert "--torn-write PATH_GLOB@BYTE" in str(err.value)
        with pytest.raises(MapReduceError, match="BYTE must be an integer"):
            parse_event("*wal*@half", "torn-write")
        with pytest.raises(MapReduceError,
                           match="PATH_GLOB must be non-empty"):
            parse_event("@3", "torn-write")

    def test_enospc_errors_name_field_and_grammar(self):
        with pytest.raises(MapReduceError) as err:
            parse_event("lots", "enospc")
        assert "AFTER_BYTES must be an integer" in str(err.value)
        assert "--enospc AFTER_BYTES[@PATH_GLOB]" in str(err.value)
        with pytest.raises(MapReduceError,
                           match="PATH_GLOB must be non-empty"):
            parse_event("4096@", "enospc")

    def test_eio_errors_name_field_and_grammar(self):
        with pytest.raises(MapReduceError) as err:
            parse_event("sideways", "eio")
        assert "mode must be READ or WRITE" in str(err.value)
        assert "--eio READ|WRITE[:NTH]" in str(err.value)
        with pytest.raises(MapReduceError, match="NTH must be an integer"):
            parse_event("read:first", "eio")

    def test_slow_io_errors_name_field_and_grammar(self):
        with pytest.raises(MapReduceError) as err:
            parse_event("slowly", "slow-io")
        assert "SECONDS must be a number" in str(err.value)
        assert "--slow-io SECONDS[@PATH_GLOB]" in str(err.value)

    def test_plan_validates_io_events(self):
        with pytest.raises(MapReduceError):
            FaultPlan(seed=0, events=(TornWrite("", at_byte=1),))
        with pytest.raises(MapReduceError):
            FaultPlan(seed=0, events=(Enospc(-1),))
        with pytest.raises(MapReduceError):
            FaultPlan(seed=0, events=(Eio("sideways"),))
        with pytest.raises(MapReduceError):
            FaultPlan(seed=0, events=(SlowIo(-0.5),))
        plan = FaultPlan(
            seed=0, events=(TornWrite("*wal*", at_byte=3), Eio("read"))
        )
        assert plan.touches_io()
        assert len(list(plan.io_events())) == 2
        assert not FaultPlan.demo(0, ["node00"]).touches_io()


# ---------------------------------------------------------------------------
# FrameLog atomic compaction (satellite S2) + every-byte recovery (S3)
# ---------------------------------------------------------------------------
RECORDS = [
    {"n": 1, "blob": b"alpha" * 5},
    {"n": 2, "blob": b"beta" * 7},
    {"n": 3, "blob": b"gamma" * 3},
]


def _make_log(tmp_path, io=None):
    backend = LocalDirectoryBackend(str(tmp_path), io=io)
    return FrameLog(backend, "t.log", "test-fingerprint")


class TestFrameLogCompaction:
    def test_rewrite_matches_reset_plus_appends_bytes(self, tmp_path):
        a = _make_log(tmp_path / "a")
        a.reset()
        for record in RECORDS:
            a.append(record)
        b = _make_log(tmp_path / "b")
        b.rewrite(RECORDS)
        with open(tmp_path / "a" / "t.log", "rb") as handle:
            via_appends = handle.read()
        with open(tmp_path / "b" / "t.log", "rb") as handle:
            via_rewrite = handle.read()
        assert via_appends == via_rewrite

    def test_rewrite_crash_keeps_old_log_intact(self, tmp_path):
        """A kill anywhere inside the compaction write must leave the
        previous log complete — rewrite is one atomic backend write."""

        class KilledWrite(LocalIO):
            def _os_write(self, tmp, path, data):
                super()._os_write(tmp, path, data)
                raise KeyboardInterrupt("killed before rename")

        log = _make_log(tmp_path)
        log.reset()
        for record in RECORDS:
            log.append(record)
        crashing = _make_log(tmp_path, io=KilledWrite())
        with pytest.raises(KeyboardInterrupt):
            crashing.rewrite(RECORDS[:1])
        # The old log survives whole; nothing was lost mid-compaction.
        assert _make_log(tmp_path).replay() == RECORDS

    def test_rewrite_kill_between_rename_and_dirsync(self, tmp_path):
        """S2 pin: the compacted log is already complete at the rename;
        losing the directory sync can only revert to the complete old
        log, never tear the new one."""

        class KilledDirsync(LocalIO):
            def _os_fsync_dir(self, parent):
                raise KeyboardInterrupt("killed before dirsync")

        log = _make_log(tmp_path)
        log.reset()
        for record in RECORDS:
            log.append(record)
        crashing = _make_log(tmp_path, io=KilledDirsync())
        with pytest.raises(KeyboardInterrupt):
            crashing.rewrite(RECORDS[:2])
        replayed = _make_log(tmp_path).replay()
        assert replayed in (RECORDS, RECORDS[:2])


class TestEveryByteTruncation:
    """Satellite S3: truncate the journal at every byte offset."""

    def test_framelog_recovery_never_raises_never_resurrects(self, tmp_path):
        log = _make_log(tmp_path)
        log.reset()
        for record in RECORDS:
            log.append(record)
        path = tmp_path / "t.log"
        full = path.read_bytes()
        for offset in range(len(full) + 1):
            path.write_bytes(full[:offset])
            replayed = _make_log(tmp_path).replay()  # must not raise
            # Only a durable prefix of the appended records may appear.
            assert replayed == RECORDS[: len(replayed)]
        path.write_bytes(full)
        assert _make_log(tmp_path).replay() == RECORDS

    def test_jobwal_recovery_never_raises_never_resurrects(self, tmp_path):
        backend = LocalDirectoryBackend(str(tmp_path))
        wal = JobWal(backend, "fp-1")
        wal.begin_round("r1")
        commits = [("t0", 1, {"v": 0}), ("t1", 1, {"v": 1}),
                   ("t2", 2, {"v": 2})]
        for task, epoch, outcome in commits:
            wal.append_commit("r1", task, epoch, outcome)
        path = tmp_path / "wal-r1.log"
        full = path.read_bytes()
        expected = {t: (e, o) for t, e, o in commits}
        for offset in range(len(full) + 1):
            path.write_bytes(full[:offset])
            recovered = wal.recover_round("r1")  # must not raise
            tasks = list(recovered)
            # Commits recover in append order, as a prefix, unmutated.
            assert tasks == [t for t, _, _ in commits][: len(tasks)]
            for task in tasks:
                assert recovered[task] == expected[task]


# ---------------------------------------------------------------------------
# Idempotent cleanup (satellite S1)
# ---------------------------------------------------------------------------
class TestIdempotentCleanup:
    def test_checkpoint_discard_round_is_idempotent(self, tmp_path):
        store = CheckpointStore.local(str(tmp_path))
        store.begin("fp")
        store.save_round("r1", [("/out/a", b"data-a", False)],
                         blobs={"stats": b"blob"})
        store.save_round("r2", [("/out/b", b"data-b", False)])
        # Simulate a crash between an earlier delete and its journal
        # update: one blob already vanished before discard runs.
        victims = [p for p in os.listdir(tmp_path) if p.startswith("r1-")]
        os.unlink(tmp_path / victims[0])
        store.discard_round("r1")
        store.discard_round("r1")  # discarding twice: no-op
        store.discard_round("never-saved")  # unknown round: no-op
        assert store.completed_rounds() == ["r2"]
        # The manifest went durable first: a reopened store agrees.
        reopened = CheckpointStore.local(str(tmp_path))
        assert reopened.begin("fp", resume=True) == ["r2"]

    def test_checkpoint_backend_delete_tolerates_missing(self, tmp_path):
        backend = LocalDirectoryBackend(str(tmp_path))
        backend.write("blob", b"x")
        backend.delete("blob")
        backend.delete("blob")  # already gone
        assert backend.read("blob") is None

    def test_segment_delete_all_tolerates_missing_files(self, tmp_path):
        io = LocalIO()
        backend = DiskSegmentBackend(
            io, [str(tmp_path / "d0")], replicas=2, min_replicas=1
        )
        store = SegmentStore(backend)
        store.put("/shuffle/j/m0/seg-0.bin", b"zero")
        store.put("/shuffle/j/m0/seg-1.bin", b"one")
        store.delete("/shuffle/j/m0/seg-0.bin")
        # Re-running cleanup over already-deleted paths must succeed.
        store.delete_all(
            ["/shuffle/j/m0/seg-0.bin", "/shuffle/j/m0/seg-1.bin",
             "/shuffle/j/never-written.bin"]
        )
        assert store.paths() == []

    def test_delete_all_continues_past_backend_errors(self):
        class ExplodingBackend:
            def __init__(self):
                self.deleted = []

            def delete(self, path):
                if path == "/boom":
                    raise ShuffleError("backend exploded")
                self.deleted.append(path)

        backend = ExplodingBackend()
        SegmentStore(backend).delete_all(["/a", "/boom", "/b"])
        assert backend.deleted == ["/a", "/b"]


# ---------------------------------------------------------------------------
# Degraded-mode spill routing
# ---------------------------------------------------------------------------
class TestDegradedSpillRouting:
    def test_enospc_falls_back_to_secondary_dir(self, tmp_path):
        primary = str(tmp_path / "primary")
        secondary = str(tmp_path / "secondary")
        io = FaultIO(
            IoPolicy(), events=(Enospc(0, path_glob=primary + "/*"),)
        )
        backend = DiskSegmentBackend(
            io, [primary, secondary], replicas=2, min_replicas=1
        )
        backend.put("/shuffle/j/m0/seg-0.bin", b"payload")
        assert io.stats.fallback_spills == 2  # both replicas degraded
        assert backend.read("/shuffle/j/m0/seg-0.bin", 0) == b"payload"
        # makedirs may have carved the tree, but no bytes landed there.
        assert not any(files for _, _, files in os.walk(primary))

    def test_replicas_shed_when_space_is_tight(self, tmp_path):
        primary = str(tmp_path / "primary")
        # Room for exactly one replica (8 bytes), then the disk is full.
        io = FaultIO(
            IoPolicy(), events=(Enospc(8, path_glob=primary + "/*"),)
        )
        backend = DiskSegmentBackend(
            io, [primary], replicas=3, min_replicas=1
        )
        backend.put("/shuffle/j/m0/seg-0.bin", b"12345678")
        assert io.stats.replicas_shed == 2
        assert backend.read("/shuffle/j/m0/seg-0.bin", 0) == b"12345678"

    def test_storage_full_raises_below_min_replicas(self, tmp_path):
        primary = str(tmp_path / "primary")
        io = FaultIO(
            IoPolicy(), events=(Enospc(0, path_glob=primary + "/*"),)
        )
        backend = DiskSegmentBackend(
            io, [primary], replicas=2, min_replicas=1
        )
        with pytest.raises(StorageFullError):
            backend.put("/shuffle/j/m0/seg-0.bin", b"payload")

    def test_spill_buffer_writes_runs_to_disk(self, tmp_path):
        from repro.shuffle.codec import get_codec
        from repro.shuffle.spill import SpillBuffer

        def run_buffer(spill_io, dirs):
            buffer = SpillBuffer(
                num_partitions=2,
                partitioner=lambda key, n: hash(key) % n,
                sort_key=lambda key: key,
                spill_records=4,
                spill_io=spill_io,
                spill_dirs=dirs,
                spill_prefix="t-m-00000-e1",
            )
            for i in range(10):
                buffer.add(f"k{i % 5}", i)
            return buffer.finish(get_codec("raw"))

        io = LocalIO()
        spill_root = str(tmp_path / "spill")
        disk = run_buffer(io, (spill_root,))
        memory = run_buffer(None, ())
        assert [s.blob for s in disk.segments] == \
            [s.blob for s in memory.segments]
        assert disk.spills == memory.spills == 3
        # Runs were really written and then cleaned up after the merge.
        assert io.stats.writes == 3
        assert io.stats.unlinks == 3
        mapspill = os.path.join(spill_root, "mapspill")
        assert not os.path.exists(mapspill) or os.listdir(mapspill) == []

    def test_spill_buffer_keeps_run_in_memory_when_all_dirs_full(
        self, tmp_path
    ):
        from repro.shuffle.codec import get_codec
        from repro.shuffle.spill import SpillBuffer

        io = FaultIO(IoPolicy(), events=(Enospc(0),))
        buffer = SpillBuffer(
            num_partitions=1,
            partitioner=lambda key, n: 0,
            sort_key=lambda key: key,
            spill_records=2,
            spill_io=io,
            spill_dirs=(str(tmp_path / "full"),),
        )
        for i in range(5):
            buffer.add(f"k{i}", i)
        result = buffer.finish(get_codec("raw"))
        assert result.spills == 3  # degraded but complete
        assert result.segments[0].records == 5

    def test_spill_io_requires_a_dir(self):
        from repro.shuffle.spill import SpillBuffer

        with pytest.raises(ShuffleError, match="spill dir"):
            SpillBuffer(
                num_partitions=1, partitioner=lambda k, n: 0,
                sort_key=lambda k: k, spill_records=2,
                spill_io=LocalIO(),
            )


# ---------------------------------------------------------------------------
# Crash-consistency fuzzing (the headline gate)
# ---------------------------------------------------------------------------
class TestCrashFuzzHarness:
    def test_recording_io_captures_relative_ops(self, tmp_path):
        io = RecordingIO(str(tmp_path))
        io.write_atomic(str(tmp_path / "a" / "x.bin"), b"x")
        io.append_durable(str(tmp_path / "log"), b"yy")
        io.unlink(str(tmp_path / "log"))
        kinds = [(op.kind, op.path) for op in io.ops]
        assert kinds == [
            ("write", os.path.join("a", "x.bin")),
            ("append", "log"),
            ("unlink", "log"),
        ]

    def test_crash_points_cover_boundaries_and_cuts(self, tmp_path):
        io = RecordingIO(str(tmp_path))
        io.write_atomic(str(tmp_path / "x.bin"), b"0123456789")
        io.append_durable(str(tmp_path / "log"), b"abcdefghij")
        points = crash_points(io.ops, seed=1, append_cuts=4, write_cuts=3)
        boundaries = [p for p in points if p.partial is None]
        appends = [p for p in points if p.partial == "append"]
        inflights = [p for p in points if p.partial == "inflight"]
        assert len(boundaries) == 3
        assert len(appends) == 4
        assert len(inflights) == 3
        assert all(0 < p.cut < 10 for p in appends + inflights)

    def test_materialize_torn_append(self, tmp_path):
        io = RecordingIO(str(tmp_path / "ref"))
        os.makedirs(tmp_path / "ref")
        io.append_durable(str(tmp_path / "ref" / "log"), b"0123456789")
        target = str(tmp_path / "crash")
        materialize(io.ops, CrashPoint(0, "append", 4), target)
        assert disk_image(target) == {"log": b"0123"}

    def test_materialize_inflight_leftover_is_invisible(self, tmp_path):
        io = RecordingIO(str(tmp_path / "ref"))
        os.makedirs(tmp_path / "ref")
        io.write_atomic(str(tmp_path / "ref" / "x.bin"), b"0123456789")
        target = str(tmp_path / "crash")
        materialize(io.ops, CrashPoint(0, "inflight", 6), target)
        # The torn temp exists on disk but the logical image is empty.
        assert os.path.exists(os.path.join(target, "x.bin" + TMP_SUFFIX))
        assert disk_image(target) == {}

    @pytest.mark.parametrize("component", COMPONENTS)
    def test_fuzz_gate_component(self, tmp_path, component):
        reports = run_fuzz_gate(
            str(tmp_path), seed=0, components=[component]
        )
        report = reports[component]
        assert report.ok, report.failures[:3]
        assert report.boundary_points >= 4
        assert report.intra_points >= 50

    def test_fuzz_gate_rejects_unknown_component(self, tmp_path):
        with pytest.raises(DurableIoError, match="unknown"):
            run_fuzz_gate(str(tmp_path), components=["hdfs"])


# ---------------------------------------------------------------------------
# Persisted record blocks
# ---------------------------------------------------------------------------
class TestBlockFiles:
    def test_block_file_roundtrip(self, tmp_path):
        from repro.mapreduce.blocks import (
            encode_block,
            read_block_file,
            write_block_file,
        )

        io = LocalIO()
        block = encode_block([("chr1", 5, "read-a"), ("chr2", 9, "read-b")])
        path = str(tmp_path / "split-000.gblk")
        write_block_file(io, path, block)
        loaded = read_block_file(io, path)
        assert loaded.decode() == block.decode()
        assert read_block_file(io, str(tmp_path / "missing")) is None
        assert io.stats.writes == 1


# ---------------------------------------------------------------------------
# End-to-end: the five-round pipeline under storage chaos
# ---------------------------------------------------------------------------
def _tiny_sample():
    from repro.genome import (
        ReadSimulationConfig,
        ReferenceSimulationConfig,
        simulate_donor,
        simulate_reads,
        simulate_reference,
    )

    reference = simulate_reference(
        ReferenceSimulationConfig(
            contig_lengths={"chr1": 3000, "chr2": 2000}, seed=11
        )
    )
    donor = simulate_donor(reference)
    pairs, _ = simulate_reads(
        donor, ReadSimulationConfig(coverage=6.0, seed=12)
    )
    return reference, pairs


class TestPipelineUnderIoChaos:
    def test_enospc_on_primary_completes_via_fallback(self, tmp_path):
        """Acceptance: ENOSPC on the primary spill dir completes the
        five-round pipeline through the fallback dir with
        ``io.fallback_spills > 0`` and byte-identical variants."""
        from repro.align import ReferenceIndex
        from repro.api import PipelineSpec, run_pipeline
        from repro.obs.recorder import ObsConfig

        reference, pairs = _tiny_sample()
        index = ReferenceIndex(reference)

        def spec(policy):
            return PipelineSpec(
                reference=reference, index=index,
                num_fastq_partitions=2, policy=policy,
                obs=ObsConfig(enabled=True),
            )

        clean_primary = str(tmp_path / "clean-primary")
        clean = run_pipeline(
            spec(ExecutionPolicy(io=IoPolicy(
                spill_dirs=(clean_primary,)
            ))),
            pairs,
        )
        clean_lines = [v.to_line() for v in clean.variants]
        assert clean_lines  # the run really called variants

        primary = str(tmp_path / "primary")
        fallback = str(tmp_path / "fallback")
        plan = FaultPlan(
            seed=0,
            events=(Enospc(0, path_glob=os.path.join(primary, "*")),),
        )
        chaos = run_pipeline(
            spec(ExecutionPolicy(
                fault_plan=plan,
                io=IoPolicy(spill_dirs=(primary, fallback)),
            )),
            pairs,
        )
        chaos_lines = [v.to_line() for v in chaos.variants]
        counters = chaos.recorder.metrics.as_dict()["counters"]
        assert counters.get("io.fallback_spills", 0) > 0
        assert counters.get("io.enospc", 0) > 0
        assert chaos_lines == clean_lines
        # Nothing durable ever landed under the full primary dir.
        assert not any(
            files for _, _, files in os.walk(primary)
        )

    def test_transient_eio_during_pipeline_is_absorbed(self, tmp_path):
        from repro.align import ReferenceIndex
        from repro.api import PipelineSpec, run_pipeline
        from repro.obs.recorder import ObsConfig

        reference, pairs = _tiny_sample()
        index = ReferenceIndex(reference)
        primary = str(tmp_path / "spill")

        baseline = run_pipeline(
            PipelineSpec(
                reference=reference, index=index, num_fastq_partitions=2,
                policy=ExecutionPolicy(
                    io=IoPolicy(spill_dirs=(primary + "-clean",))
                ),
            ),
            pairs,
        )
        plan = FaultPlan(seed=0, events=(Eio("write"), Eio("read", nth=2)))
        chaos = run_pipeline(
            PipelineSpec(
                reference=reference, index=index, num_fastq_partitions=2,
                policy=ExecutionPolicy(
                    fault_plan=plan,
                    io=IoPolicy(spill_dirs=(primary,)),
                ),
                obs=ObsConfig(enabled=True),
            ),
            pairs,
        )
        counters = chaos.recorder.metrics.as_dict()["counters"]
        assert counters.get("io.eio", 0) == 2
        assert counters.get("io.retries", 0) >= 2
        assert [v.to_line() for v in chaos.variants] == \
            [v.to_line() for v in baseline.variants]
