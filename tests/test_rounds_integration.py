"""Integration tests: the five MapReduce rounds and full pipelines.

These run the complete Gesall pipeline on the shared synthetic dataset
and check the paper's functional claims: record conservation across
rounds, duplicate-count equivalence with the serial gold standard, and
the characteristic small discordances of parallel execution.
"""

import pytest

from repro.align.pairing import PairedEndAligner
from repro.cleaning.duplicates import MarkDuplicates, duplicate_count
from repro.cleaning.sort import SortSam
from repro.formats.bam import read_bam
from repro.gdpt.partitioner import split_pairs_contiguously
from repro.hdfs.filesystem import Hdfs
from repro.mapreduce.engine import MapReduceEngine
from repro.pipeline.hybrid import HybridPipeline
from repro.pipeline.parallel import GesallPipeline
from repro.pipeline.serial import SerialPipeline
from repro.wrappers.rounds import GesallRounds


@pytest.fixture(scope="module")
def rounds_env(reference, ref_index, aligner, pairs):
    """A GesallRounds instance with Round 1 already executed."""
    hdfs = Hdfs(["n0", "n1", "n2", "n3"], replication=2, block_size=64 * 1024)
    engine = MapReduceEngine(nodes=hdfs.nodes)
    rounds = GesallRounds(hdfs, engine, aligner, reference, chunk_bytes=8 * 1024)
    partitions = split_pairs_contiguously(list(pairs), 6)
    round1_paths = rounds.round1_alignment(partitions)
    return rounds, hdfs, round1_paths


def read_all(hdfs, paths):
    records = []
    for path in paths:
        _, part = read_bam(hdfs.get(path))
        records.extend(part)
    return records


class TestRound1:
    def test_one_output_partition_per_input(self, rounds_env, pairs):
        rounds, hdfs, paths = rounds_env
        assert len(paths) == 6

    def test_all_reads_aligned_once(self, rounds_env, pairs):
        rounds, hdfs, paths = rounds_env
        records = read_all(hdfs, paths)
        assert len(records) == 2 * len(pairs)
        names = {r.qname for r in records}
        assert len(names) == len(pairs)

    def test_outputs_are_logical_partitions(self, rounds_env):
        rounds, hdfs, paths = rounds_env
        for path in paths:
            assert hdfs.get_file(path).logical_partition

    def test_streaming_stats_captured(self, rounds_env):
        rounds, _, _ = rounds_env
        assert rounds.streaming_stats is not None
        assert rounds.streaming_stats.programs == ["bwa-mem", "samtobam"]


class TestRound2:
    @pytest.fixture(scope="class")
    def round2(self, rounds_env):
        rounds, hdfs, round1_paths = rounds_env
        paths = rounds.round2_cleaning(round1_paths, out_dir="/r2t",
                                       num_reducers=3)
        return rounds, hdfs, paths

    def test_read_groups_stamped(self, round2):
        rounds, hdfs, paths = round2
        records = read_all(hdfs, paths)
        assert all(r.tags.get("RG") == "RG1" for r in records)

    def test_pairs_stay_together(self, round2):
        """Logical partitioning: both reads of a pair in one partition."""
        rounds, hdfs, paths = round2
        for path in paths:
            _, records = read_bam(hdfs.get(path))
            counts = {}
            for record in records:
                counts[record.qname] = counts.get(record.qname, 0) + 1
            assert all(count == 2 for count in counts.values())

    def test_mate_info_fixed(self, round2):
        rounds, hdfs, paths = round2
        records = read_all(hdfs, paths)
        by_name = {}
        for record in records:
            by_name.setdefault(record.qname, []).append(record)
        for ends in by_name.values():
            first = next(e for e in ends if e.flags.is_first_in_pair)
            second = next(e for e in ends if e.flags.is_second_in_pair)
            if first.is_mapped and second.is_mapped:
                assert first.pnext == second.pos
                assert second.pnext == first.pos

    def test_record_conservation(self, round2, rounds_env, pairs):
        rounds, hdfs, paths = round2
        records = read_all(hdfs, paths)
        # CleanSam may drop overhanging alignments; nothing else changes.
        assert 0 <= 2 * len(pairs) - len(records) < 0.02 * 2 * len(pairs)


class TestRound3:
    @pytest.fixture(scope="class")
    def round3(self, rounds_env):
        from repro.mapreduce import counters as C
        rounds, hdfs, round1_paths = rounds_env
        r2 = rounds.round2_cleaning(round1_paths, out_dir="/r2md",
                                    num_reducers=3)
        opt = rounds.round3_mark_duplicates(r2, mode="opt", out_dir="/r3opt",
                                            num_reducers=3)
        opt_shuffled = rounds.results["round3"].counters.get(C.SHUFFLED_RECORDS)
        reg = rounds.round3_mark_duplicates(r2, mode="reg", out_dir="/r3reg",
                                            num_reducers=3)
        reg_shuffled = rounds.results["round3"].counters.get(C.SHUFFLED_RECORDS)
        return rounds, hdfs, r2, opt, reg, opt_shuffled, reg_shuffled

    def test_record_conservation(self, round3):
        rounds, hdfs, r2, opt, reg, _, _ = round3
        input_records = read_all(hdfs, r2)
        assert len(read_all(hdfs, opt)) == len(input_records)
        assert len(read_all(hdfs, reg)) == len(input_records)

    def test_opt_and_reg_mark_same_number(self, round3):
        rounds, hdfs, r2, opt, reg, _, _ = round3
        assert duplicate_count(read_all(hdfs, opt)) == duplicate_count(
            read_all(hdfs, reg)
        )

    def test_opt_shuffles_fewer_records(self, round3):
        """The bloom-filter optimization cuts shuffled records (paper:
        1.03x vs 1.92x the input)."""
        rounds, hdfs, r2, opt, reg, opt_shuffled, reg_shuffled = round3
        assert opt_shuffled < reg_shuffled

    def test_duplicate_count_matches_serial(self, round3, sam_header):
        """Paper section 4.5.2: the number of duplicates matches the
        serial gold standard (only tie choices differ)."""
        rounds, hdfs, r2, opt, reg, _, _ = round3
        input_records = read_all(hdfs, r2)
        serial = MarkDuplicates()
        _, serial_out = serial.run(sam_header, input_records)
        parallel_count = duplicate_count(read_all(hdfs, opt))
        assert parallel_count == duplicate_count(serial_out)

    def test_outputs_coordinate_sorted_within_partition(self, round3):
        rounds, hdfs, r2, opt, reg, _, _ = round3
        for path in opt:
            header, records = read_bam(hdfs.get(path))
            mapped = [r for r in records if r.is_mapped]
            order = {name: i for i, name in enumerate(header.sequence_names())}
            keys = [(order.get(r.rname, 99), r.pos) for r in mapped]
            assert keys == sorted(keys)


class TestRounds45:
    @pytest.fixture(scope="class")
    def round5(self, rounds_env, reference):
        rounds, hdfs, round1_paths = rounds_env
        r2 = rounds.round2_cleaning(round1_paths, out_dir="/r2v",
                                    num_reducers=3)
        r3 = rounds.round3_mark_duplicates(r2, mode="opt", out_dir="/r3v",
                                           num_reducers=3)
        r4 = rounds.round4_sort_index(r3, out_dir="/r4v")
        variants = rounds.round5_haplotype_caller(r4)
        return rounds, hdfs, r4, variants

    def test_one_partition_per_contig(self, round5, reference):
        rounds, hdfs, r4, variants = round5
        assert len(r4) == len(reference.contig_names())

    def test_partitions_sorted_and_indexed(self, round5):
        rounds, hdfs, r4, variants = round5
        for path in r4:
            header, records = read_bam(hdfs.get(path))
            assert header.sort_order == "coordinate"
            positions = [r.pos for r in records]
            assert positions == sorted(positions)
            assert hdfs.exists(path + ".bai")

    def test_variants_called(self, round5, donor):
        rounds, hdfs, r4, variants = round5
        assert variants
        truth = donor.truth_sites()
        hits = sum(1 for v in variants if v.site_key() in truth)
        assert hits / len(truth) > 0.4  # sensitivity sanity bound

    def test_variants_sorted(self, round5):
        rounds, hdfs, r4, variants = round5
        keys = [v.site_key() for v in variants]
        assert keys == sorted(keys)


class TestRecalRounds:
    def test_recalibration_table_built_and_applied(self, rounds_env):
        rounds, hdfs, round1_paths = rounds_env
        r2 = rounds.round2_cleaning(round1_paths, out_dir="/r2rc",
                                    num_reducers=2)
        table = rounds.round_recalibrate(r2)
        assert table.total_observations() > 0
        out = rounds.round_print_reads(r2, table, out_dir="/bqsr")
        before = read_all(hdfs, r2)
        after = read_all(hdfs, out)
        assert len(before) == len(after)
        changed = sum(
            1 for b, a in zip(
                sorted(before, key=lambda r: (r.qname, int(r.flags))),
                sorted(after, key=lambda r: (r.qname, int(r.flags))),
            )
            if b.qual != a.qual
        )
        assert changed > 0

    def test_parallel_table_matches_serial(self, rounds_env, reference):
        from repro.recal.recalibrator import BaseRecalibrator
        rounds, hdfs, round1_paths = rounds_env
        r2 = rounds.round2_cleaning(round1_paths, out_dir="/r2rc2",
                                    num_reducers=2)
        parallel_table = rounds.round_recalibrate(r2)
        serial_table = BaseRecalibrator(reference).build_table(
            read_all(hdfs, r2)
        )
        assert (
            parallel_table.total_observations()
            == serial_table.total_observations()
        )
