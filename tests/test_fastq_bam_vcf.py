"""Unit tests for FASTQ, BAM container and VCF formats."""

import pytest

from repro.errors import BamError, FormatError
from repro.formats import flags as F
from repro.formats.bam import (
    BamChunkReader,
    BamLinearIndex,
    bam_bytes,
    frame_boundaries,
    iter_frames,
    read_bam,
    read_header,
)
from repro.formats.cigar import Cigar
from repro.formats.fastq import (
    FastqRecord,
    interleave,
    read_fastq,
    split_into_partitions,
    write_fastq,
)
from repro.formats.sam import SamHeader, SamRecord, encode_quals
from repro.formats.vcf import VariantRecord, read_vcf, sort_variants, write_vcf


def fastq(name, n=10):
    return FastqRecord(name, "A" * n, [30] * n)


class TestFastq:
    def test_length_mismatch_rejected(self):
        with pytest.raises(FormatError):
            FastqRecord("r1", "ACGT", [30, 30])

    def test_file_roundtrip(self, tmp_path):
        records = [fastq(f"r{i}") for i in range(4)]
        path = str(tmp_path / "t.fastq")
        write_fastq(path, records)
        assert list(read_fastq(path)) == records

    def test_interleave_pairs_by_name(self):
        fwd = [fastq("a/1"), fastq("b/1")]
        rev = [fastq("a/2"), fastq("b/2")]
        pairs = list(interleave(fwd, rev))
        assert [(p[0].name, p[1].name) for p in pairs] == [
            ("a/1", "a/2"), ("b/1", "b/2")
        ]

    def test_interleave_name_mismatch(self):
        with pytest.raises(FormatError):
            list(interleave([fastq("a/1")], [fastq("b/2")]))

    def test_interleave_unequal_lengths(self):
        with pytest.raises(FormatError):
            list(interleave([fastq("a/1"), fastq("b/1")], [fastq("a/2")]))

    def test_split_preserves_pairs_and_order(self):
        pairs = [(fastq(f"{i}/1"), fastq(f"{i}/2")) for i in range(10)]
        parts = list(split_into_partitions(pairs, 3))
        assert [len(p) for p in parts] == [3, 3, 3, 1]
        flat = [pair for part in parts for pair in part]
        assert flat == pairs

    def test_split_rejects_bad_size(self):
        with pytest.raises(FormatError):
            list(split_into_partitions([], 0))


def make_records(n, contig="chr1"):
    return [
        SamRecord(
            f"r{i:04d}", F.SamFlags(0), contig, 10 * i + 1, 60,
            Cigar.parse("8M"), seq="ACGTACGT", qual=encode_quals([30] * 8),
        )
        for i in range(n)
    ]


class TestBam:
    def test_roundtrip(self):
        header = SamHeader(sequences=[("chr1", 100000)])
        records = make_records(200)
        data = bam_bytes(header, records, chunk_bytes=512)
        got_header, got_records = read_bam(data)
        assert got_header == header
        assert got_records == records

    def test_empty_records(self):
        header = SamHeader(sequences=[("chr1", 100)])
        data = bam_bytes(header, [])
        got_header, got_records = read_bam(data)
        assert got_records == []
        assert got_header == header

    def test_read_header_only(self):
        header = SamHeader(sequences=[("chr1", 100000)], sort_order="coordinate")
        data = bam_bytes(header, make_records(50))
        assert read_header(data) == header

    def test_chunking_respects_target(self):
        header = SamHeader(sequences=[("chr1", 100000)])
        data = bam_bytes(header, make_records(300), chunk_bytes=400)
        boundaries = frame_boundaries(data)
        assert len(boundaries) > 5  # header + many data chunks

    def test_missing_magic_rejected(self):
        with pytest.raises(BamError):
            read_bam(b"not a bam file at all")

    def test_truncated_frame_rejected(self):
        header = SamHeader(sequences=[("chr1", 100)])
        data = bam_bytes(header, make_records(10))
        with pytest.raises(BamError):
            list(iter_frames(data[:-3]))

    def test_chunk_reader_matches_full_read(self):
        header = SamHeader(sequences=[("chr1", 100000)])
        records = make_records(100)
        data = bam_bytes(header, records, chunk_bytes=300)
        reader = BamChunkReader(header, [data])
        assert reader.records() == records

    def test_zero_chunk_bytes_rejected(self):
        with pytest.raises(BamError):
            bam_bytes(SamHeader(), [], chunk_bytes=0)


class TestBamLinearIndex:
    def test_build_and_seek(self):
        header = SamHeader(sequences=[("chr1", 100000)])
        records = make_records(200)
        data = bam_bytes(header, records, chunk_bytes=500)
        index = BamLinearIndex.build(data)
        assert index.chunk_count() > 1
        offset = index.first_chunk_at_or_after("chr1", 1001)
        assert offset is not None
        # Scanning from the seek point must reach position 1001.
        found = []
        hit = False
        for frame_offset, _ in iter_frames(data):
            if frame_offset >= offset:
                hit = True
            found.append(frame_offset)
        assert hit

    def test_seek_unknown_contig(self):
        header = SamHeader(sequences=[("chr1", 100000)])
        data = bam_bytes(header, make_records(50), chunk_bytes=500)
        index = BamLinearIndex.build(data)
        assert index.first_chunk_at_or_after("chrZ", 1) is None

    def test_serialization_roundtrip(self):
        header = SamHeader(sequences=[("chr1", 100000)])
        data = bam_bytes(header, make_records(80), chunk_bytes=400)
        index = BamLinearIndex.build(data)
        parsed = BamLinearIndex.from_bytes(index.to_bytes())
        assert parsed.entries == index.entries


class TestVcf:
    def test_line_roundtrip(self):
        variant = VariantRecord(
            "chr1", 1234, "A", "G", qual=87.5, genotype="0/1",
            info={"DP": 30.0, "MQ": 58.2},
        )
        assert VariantRecord.from_line(variant.to_line()) == variant

    def test_classification_snp(self):
        assert VariantRecord("chr1", 1, "A", "G", 50).is_snp
        assert not VariantRecord("chr1", 1, "A", "AG", 50).is_snp

    def test_transition_transversion(self):
        assert VariantRecord("chr1", 1, "A", "G", 50).is_transition
        assert VariantRecord("chr1", 1, "C", "T", 50).is_transition
        assert VariantRecord("chr1", 1, "A", "T", 50).is_transversion
        assert not VariantRecord("chr1", 1, "A", "AT", 50).is_transversion

    def test_heterozygosity(self):
        assert VariantRecord("chr1", 1, "A", "G", 50, genotype="0/1").is_heterozygous
        assert not VariantRecord("chr1", 1, "A", "G", 50, genotype="1/1").is_heterozygous
        assert VariantRecord("chr1", 1, "A", "G", 50, genotype="0|1").is_heterozygous

    def test_empty_alleles_rejected(self):
        with pytest.raises(FormatError):
            VariantRecord("chr1", 1, "", "G", 50)

    def test_file_roundtrip(self, tmp_path):
        variants = [
            VariantRecord("chr1", 5, "A", "T", 60.0),
            VariantRecord("chr2", 9, "G", "GA", 45.0, genotype="1/1"),
        ]
        path = str(tmp_path / "t.vcf")
        write_vcf(path, variants)
        assert list(read_vcf(path)) == variants

    def test_sort_variants(self):
        variants = [
            VariantRecord("chr2", 5, "A", "T", 60.0),
            VariantRecord("chr1", 9, "G", "C", 45.0),
            VariantRecord("chr1", 2, "G", "C", 45.0),
        ]
        ordered = sort_variants(variants)
        assert [(v.chrom, v.pos) for v in ordered] == [
            ("chr1", 2), ("chr1", 9), ("chr2", 5)
        ]
