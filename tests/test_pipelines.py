"""End-to-end tests: serial vs parallel vs hybrid pipelines."""

import pytest

from repro.metrics.accuracy import (
    compare_alignments,
    compare_duplicates,
    compare_variants,
)
from repro.pipeline.hybrid import HybridPipeline
from repro.pipeline.parallel import GesallPipeline
from repro.pipeline.serial import SerialPipeline


@pytest.fixture(scope="module")
def serial_result(reference, ref_index, pairs):
    return SerialPipeline(reference, index=ref_index, batch_size=500).run(pairs)


@pytest.fixture(scope="module")
def parallel_result(reference, ref_index, pairs):
    pipeline = GesallPipeline(
        reference, index=ref_index, num_fastq_partitions=6, num_reducers=3
    )
    return pipeline.run(pairs)


class TestSerialPipeline:
    def test_stage_outputs_populated(self, serial_result, pairs):
        assert len(serial_result.alignment) == 2 * len(pairs)
        assert serial_result.cleaned
        assert serial_result.deduped
        assert serial_result.variants

    def test_deduped_is_coordinate_sorted(self, serial_result):
        mapped = [r for r in serial_result.deduped if r.is_mapped]
        last = None
        for record in mapped:
            key = (record.rname, record.pos)
            if last is not None and record.rname == last[0]:
                assert key >= last
            last = key

    def test_variants_hit_truth(self, serial_result, donor):
        truth = donor.truth_sites()
        called = {v.site_key() for v in serial_result.variants}
        sensitivity = len(called & truth) / len(truth)
        precision = len(called & truth) / len(called)
        assert sensitivity > 0.4
        assert precision > 0.4

    def test_recalibration_branch(self, reference, ref_index, pairs):
        pipeline = SerialPipeline(
            reference, index=ref_index, batch_size=500, with_recalibration=True
        )
        result = pipeline.run(pairs[:400])
        assert result.recal_table is not None
        assert result.recal_table.total_observations() > 0
        assert result.analysis_ready


class TestParallelPipeline:
    def test_same_read_count_as_serial(self, serial_result, parallel_result):
        assert len(parallel_result.alignment) == len(serial_result.alignment)

    def test_round_results_exposed(self, parallel_result):
        rounds = parallel_result.rounds
        assert set(rounds.results) >= {
            "round1", "round2", "round3", "round4", "round5", "round_bloom"
        }

    def test_variants_produced(self, parallel_result):
        assert parallel_result.variants

    def test_alignment_discordance_small_but_nonzero(
        self, serial_result, parallel_result
    ):
        """Paper: Bwa is *not* embarrassingly parallel, but the
        discordance is a small fraction of reads."""
        comparison = compare_alignments(
            serial_result.alignment, parallel_result.alignment
        )
        assert comparison.d_count > 0
        assert comparison.d_count / comparison.total < 0.2

    def test_duplicate_net_count_close(self, serial_result, parallel_result):
        comparison = compare_duplicates(
            serial_result.deduped, parallel_result.deduped
        )
        # Net duplicate-count difference is tiny relative to flag churn
        # (paper: 259 vs a 1.6M flag-difference count).
        assert comparison.count_difference <= max(
            5, 0.2 * max(1, comparison.flag_differences)
        )

    def test_variant_concordance_dominates(self, serial_result, parallel_result):
        comparison = compare_variants(
            serial_result.variants, parallel_result.variants
        )
        assert len(comparison.concordant) > 0
        assert comparison.d_count <= 0.3 * len(comparison.concordant)


class TestHybridPipeline:
    def test_impact_from_alignment(self, reference, serial_result,
                                   parallel_result):
        hybrid = HybridPipeline(reference)
        variants = hybrid.from_alignment(parallel_result.alignment)
        comparison = compare_variants(serial_result.variants, variants)
        assert len(comparison.concordant) > 0
        # D_impact should be no larger than the full-parallel D_count
        # by much; it isolates upstream effects only.
        assert comparison.d_count <= 0.3 * len(comparison.concordant)

    def test_identical_input_gives_identical_output(self, reference,
                                                    serial_result):
        """A hybrid run on the *serial* alignment must reproduce the
        serial pipeline exactly (control experiment)."""
        hybrid = HybridPipeline(reference)
        variants = hybrid.from_alignment(serial_result.alignment)
        assert {v.site_key() for v in variants} == {
            v.site_key() for v in serial_result.variants
        }

    def test_from_markdup_control(self, reference, serial_result):
        hybrid = HybridPipeline(reference)
        variants = hybrid.from_markdup(serial_result.deduped)
        assert {v.site_key() for v in variants} == {
            v.site_key() for v in serial_result.variants
        }
