"""Unit tests for the MapReduce engine and streaming emulation."""

import pytest

from repro.errors import MapReduceError
from repro.mapreduce import counters as C
from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import (
    InputSplit,
    JobConf,
    default_partitioner,
    make_splits,
)
from repro.mapreduce.streaming import (
    BytesOutputReader,
    ExternalProgram,
    StreamingPipeline,
    TextInputWriter,
)


def word_mapper(payload, ctx):
    for word in payload.split():
        ctx.emit(word, 1)


def sum_reducer(key, values, ctx):
    ctx.emit(key, sum(values))


class TestCounters:
    def test_inc_and_get(self):
        counters = Counters()
        counters.inc("A", 5)
        counters.inc("A")
        assert counters.get("A") == 6
        assert counters.get("missing") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.inc("X", 1)
        b.inc("X", 2)
        b.inc("Y", 3)
        a.merge(b)
        assert a.get("X") == 3 and a.get("Y") == 3


class TestJobConf:
    def test_invalid_reducers(self):
        with pytest.raises(MapReduceError):
            JobConf("j", word_mapper, sum_reducer, num_reducers=0)

    def test_invalid_slowstart(self):
        with pytest.raises(MapReduceError):
            JobConf("j", word_mapper, slowstart=1.5)

    def test_map_only_detection(self):
        assert JobConf("j", word_mapper).is_map_only
        assert not JobConf("j", word_mapper, sum_reducer).is_map_only

    def test_default_partitioner_stable_and_in_range(self):
        for key in ["a", ("x", 1), 42]:
            p = default_partitioner(key, 7)
            assert 0 <= p < 7
            assert p == default_partitioner(key, 7)

    def test_make_splits(self):
        splits = make_splits(["a", "b"], nodes=["n1", "n2"])
        assert splits[0].preferred_node == "n1"
        assert splits[1].preferred_node == "n2"
        assert splits[0].split_id != splits[1].split_id


class TestEngine:
    def test_wordcount(self):
        engine = MapReduceEngine(nodes=["n1", "n2"])
        job = JobConf("wc", word_mapper, sum_reducer, num_reducers=3)
        result = engine.run(job, make_splits(["a b a", "b c a"]))
        assert sorted(result.all_outputs()) == [("a", 3), ("b", 2), ("c", 1)]

    def test_output_invariant_to_reducer_count(self):
        engine = MapReduceEngine(nodes=["n1"])
        splits_text = ["the quick brown fox", "jumps over the lazy dog the"]
        baselines = None
        for reducers in (1, 2, 5, 13):
            job = JobConf("wc", word_mapper, sum_reducer, num_reducers=reducers)
            outputs = sorted(engine.run(job, make_splits(splits_text)).all_outputs())
            if baselines is None:
                baselines = outputs
            assert outputs == baselines

    def test_output_invariant_to_split_boundaries(self):
        engine = MapReduceEngine(nodes=["n1"])
        text = "a b c d e f a b c a b a"
        job = JobConf("wc", word_mapper, sum_reducer, num_reducers=2)
        one = sorted(engine.run(job, make_splits([text])).all_outputs())
        words = text.split()
        many = sorted(
            engine.run(
                job,
                make_splits([" ".join(words[i : i + 3]) for i in range(0, 12, 3)]),
            ).all_outputs()
        )
        assert one == many

    def test_map_only_job(self):
        engine = MapReduceEngine()
        job = JobConf("ids", lambda payload, ctx: ctx.emit(payload, None))
        result = engine.run(job, make_splits(["x", "y"]))
        assert [k for k, _ in result.all_outputs()] == ["x", "y"]
        assert result.counters.get(C.SHUFFLED_RECORDS) == 0

    def test_counters_populated(self):
        engine = MapReduceEngine()
        job = JobConf("wc", word_mapper, sum_reducer, num_reducers=2)
        result = engine.run(job, make_splits(["a b", "c d e"]))
        assert result.counters.get(C.MAP_INPUT_RECORDS) == 2
        assert result.counters.get(C.MAP_OUTPUT_RECORDS) == 5
        assert result.counters.get(C.SHUFFLED_RECORDS) == 5
        assert result.counters.get(C.REDUCE_INPUT_GROUPS) == 5

    def test_reduce_values_arrive_in_map_task_order(self):
        """Hadoop's merge keeps per-mapper segment order: values of one
        key arrive in map-task order, not original input order — the
        mechanism behind parallel MarkDuplicates tie differences."""
        engine = MapReduceEngine()
        observed = {}

        def mapper(payload, ctx):
            for item in payload:
                ctx.emit("key", item)

        def reducer(key, values, ctx):
            observed[key] = list(values)

        job = JobConf("order", mapper, reducer, num_reducers=1)
        engine.run(job, make_splits([["m0-a", "m0-b"], ["m1-a"]]))
        assert observed["key"] == ["m0-a", "m0-b", "m1-a"]

    def test_history_tracks_tasks(self):
        engine = MapReduceEngine(nodes=["n1", "n2"])
        job = JobConf("wc", word_mapper, sum_reducer, num_reducers=2)
        result = engine.run(job, make_splits(["a", "b", "c"]))
        assert len(result.history.maps()) == 3
        assert len(result.history.reduces()) == 2
        nodes = {t.node for t in result.history.tasks}
        assert nodes <= {"n1", "n2"}

    def test_no_splits_rejected(self):
        engine = MapReduceEngine()
        with pytest.raises(MapReduceError):
            engine.run(JobConf("j", word_mapper), [])

    def test_custom_partitioner_respected(self):
        engine = MapReduceEngine()
        job = JobConf(
            "p", word_mapper, sum_reducer,
            partitioner=lambda key, n: 0, num_reducers=3,
        )
        result = engine.run(job, make_splits(["a b c"]))
        assert result.reduce_outputs[0]
        assert not result.reduce_outputs.get(1)

    def test_spill_accounting(self):
        engine = MapReduceEngine()

        def big_mapper(payload, ctx):
            for i in range(100):
                ctx.emit(i % 7, payload)

        job = JobConf("spill", big_mapper, sum_reducer, io_sort_records=30)
        result = engine.run(job, make_splits([1]))
        map_task = result.history.maps()[0]
        assert map_task.spills == 4  # ceil(100 / 30)


class Upper(ExternalProgram):
    name = "upper"

    def process(self, stdin: bytes) -> bytes:
        return stdin.upper()


class Exclaim(ExternalProgram):
    name = "exclaim"

    def process(self, stdin: bytes) -> bytes:
        return stdin.replace(b"\n", b"!\n")


class TestStreaming:
    def test_pipeline_chains_programs(self):
        pipeline = StreamingPipeline([Upper(), Exclaim()])
        out = pipeline.run(b"hello\nworld\n")
        assert out == b"HELLO!\nWORLD!\n"

    def test_pipe_stats_recorded(self):
        pipeline = StreamingPipeline([Upper(), Exclaim()])
        pipeline.run(b"abc\n")
        assert pipeline.stats.programs == ["upper", "exclaim"]
        assert pipeline.stats.bytes_in == [4, 4]
        assert pipeline.stats.bytes_out == [4, 5]
        assert pipeline.stats.total_transferred() == 17

    def test_pipe_flush_count(self):
        pipeline = StreamingPipeline([Upper()], pipe_buffer_bytes=10)
        assert pipeline.pipe_flushes(25) == 3

    def test_text_writer_reader_roundtrip(self):
        writer, reader = TextInputWriter(), BytesOutputReader()
        lines = ["one", "two", "three"]
        assert reader.decode(writer.encode(lines)) == lines
        assert reader.decode(b"") == []
        assert writer.encode([]) == b""
