"""Edge-case and error-path tests across modules."""

import pytest

from repro.cleaning.fix_mate import _template_length
from repro.errors import (
    BamError,
    HdfsError,
    MapReduceError,
    PartitioningError,
    PipelineError,
    ReproError,
)
from repro.formats import flags as F
from repro.formats.bam import bam_bytes, iter_frames, read_bam, read_header
from repro.formats.cigar import Cigar
from repro.formats.sam import SamHeader, SamRecord, encode_quals
from repro.formats.vcf import VariantRecord
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import JobConf, _default_value_size, make_splits


def rec(qname="r", pos=100, flag_bits=0, cigar="10M", rname="chr1"):
    return SamRecord(
        qname, F.SamFlags(flag_bits), rname, pos, 60, Cigar.parse(cigar),
        seq="ACGTACGTAC" if cigar != "*" else "ACGTACGTAC",
        qual=encode_quals([30] * 10),
    )


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for error_type in (BamError, HdfsError, MapReduceError,
                           PartitioningError, PipelineError):
            assert issubclass(error_type, ReproError)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise BamError("boom")


class TestCigarExotics:
    def test_padding_op_consumes_nothing(self):
        cigar = Cigar.parse("5M2P5M")
        assert cigar.query_length() == 10
        assert cigar.reference_length() == 10

    def test_skip_op_consumes_reference_only(self):
        cigar = Cigar.parse("5M100N5M")
        assert cigar.query_length() == 10
        assert cigar.reference_length() == 110

    def test_equals_and_x_ops(self):
        cigar = Cigar.parse("5=2X3=")
        assert cigar.query_length() == 10
        assert cigar.reference_length() == 10

    def test_all_clips(self):
        cigar = Cigar.parse("5H5S")
        assert cigar.leading_clip() == 10
        assert cigar.is_fully_clipped()


class TestTemplateLength:
    def make(self, pos, reverse=False, unmapped=False, rname="chr1"):
        bits = F.PAIRED
        if reverse:
            bits |= F.REVERSE
        if unmapped:
            bits |= F.UNMAPPED
        return rec("p", pos=pos, flag_bits=bits, rname=rname)

    def test_leftmost_positive(self):
        left, right = self.make(100), self.make(300, reverse=True)
        assert _template_length(left, right) == 300 + 9 - 100 + 1
        assert _template_length(right, left) == -(300 + 9 - 100 + 1)

    def test_unmapped_zero(self):
        assert _template_length(self.make(100, unmapped=True),
                                self.make(300)) == 0

    def test_cross_contig_zero(self):
        assert _template_length(self.make(100),
                                self.make(300, rname="chr2")) == 0

    def test_same_position_uses_strand(self):
        fwd = self.make(100)
        back = self.make(100, reverse=True)
        assert _template_length(fwd, back) > 0
        assert _template_length(back, fwd) < 0


class TestBamEdges:
    def test_read_header_skips_body(self):
        header = SamHeader(sequences=[("chr1", 500)], sort_order="coordinate")
        data = bam_bytes(header, [rec() for _ in range(20)], chunk_bytes=128)
        assert read_header(data) == header

    def test_iter_frames_at_frame_offset(self):
        header = SamHeader(sequences=[("chr1", 500)])
        data = bam_bytes(header, [rec()], chunk_bytes=128)
        offsets = [offset for offset, _ in iter_frames(data)]
        # Re-entering at the second frame's offset works without magic.
        resumed = list(iter_frames(data, offsets[1]))
        assert len(resumed) == len(offsets) - 1

    def test_single_record_roundtrip(self):
        header = SamHeader(sequences=[("chr1", 500)])
        record = rec()
        _, out = read_bam(bam_bytes(header, [record]))
        assert out == [record]


class TestVcfEdges:
    def test_info_free_roundtrip(self):
        variant = VariantRecord("chr1", 5, "A", "T", 10.0)
        parsed = VariantRecord.from_line(variant.to_line())
        assert parsed.info == {}

    def test_phased_genotype_preserved(self):
        variant = VariantRecord("chr1", 5, "A", "T", 10.0, genotype="1|0")
        assert VariantRecord.from_line(variant.to_line()).genotype == "1|0"

    def test_site_key_distinguishes_alleles(self):
        a = VariantRecord("chr1", 5, "A", "T", 10.0)
        b = VariantRecord("chr1", 5, "A", "G", 10.0)
        assert a.site_key() != b.site_key()


class TestValueSize:
    def test_record_size_uses_line(self):
        record = rec()
        assert _default_value_size(record) == len(record.to_line()) + 1

    def test_bytes_and_str(self):
        assert _default_value_size(b"abcd") == 4
        assert _default_value_size("abcd") == 5

    def test_tuple_of_records(self):
        record = rec()
        assert _default_value_size((record, record)) == 2 * (
            len(record.to_line()) + 1
        )

    def test_fallback_repr(self):
        assert _default_value_size(1234) == len("1234")


class TestEngineEdges:
    def test_sort_key_orders_reduce_input(self):
        # Keys sorted by custom key (descending) change group order.
        seen = []

        def mapper(payload, ctx):
            for item in payload:
                ctx.emit(item, item)

        def reducer(key, values, ctx):
            seen.append(key)

        engine = MapReduceEngine()
        job = JobConf("sorted", mapper, reducer, num_reducers=1,
                      sort_key=lambda k: -k)
        engine.run(job, make_splits([[3, 1, 2]]))
        assert seen == [3, 2, 1]

    def test_reducer_emitting_nothing(self):
        engine = MapReduceEngine()
        job = JobConf(
            "silent", lambda p, c: c.emit("k", 1),
            lambda k, v, c: None, num_reducers=1,
        )
        result = engine.run(job, make_splits(["x"]))
        assert result.all_outputs() == []

    def test_single_node_engine(self):
        engine = MapReduceEngine(nodes=["only"])
        job = JobConf("s", lambda p, c: c.emit(p, 1),
                      lambda k, v, c: c.emit(k, sum(v)), num_reducers=3)
        result = engine.run(job, make_splits(list("abcabc")))
        assert dict(result.all_outputs()) == {"a": 2, "b": 2, "c": 2}
        assert all(t.node == "only" for t in result.history.tasks)


class TestHeaderlessRecords:
    def test_unmapped_star_record_roundtrip(self):
        record = SamRecord(
            "u", F.SamFlags(F.PAIRED | F.UNMAPPED | F.MATE_UNMAPPED),
            "*", 0, 0, Cigar.parse("*"),
            seq="ACGT", qual=encode_quals([30] * 4),
        )
        assert SamRecord.from_line(record.to_line()) == record
        assert record.reference_end == 0
        assert not record.is_mapped
