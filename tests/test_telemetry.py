"""Tests for the performance-study telemetry subsystem.

Covers the worker resource sampler, the straggler/utilization
analytics, the cross-run bench comparator, the HTML report, and the
``repro-genomics report`` / ``compare`` CLI surface — including the
acceptance scenario: a pool-executor five-round run whose report
carries a per-phase utilization timeline, at least one resource
time-series per worker, and a straggler section.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.executors import fork_available
from repro.mapreduce.history import JobHistory, TaskAttempt
from repro.mapreduce.job import JobConf, make_splits
from repro.mapreduce.policy import ExecutionPolicy
from repro.obs.analysis import (
    MAD_THRESHOLD,
    analyze,
    detect_stragglers,
    mad_scores,
    phase_timeline,
    queue_run_decomposition,
    worker_cost_summary,
)
from repro.obs.compare import (
    compare_benches,
    format_comparison,
    load_bench,
)
from repro.obs.recorder import ObsConfig, Span, TraceRecorder
from repro.obs.report import render_html_report
from repro.obs.sampler import (
    ResourceSampler,
    probe_sources,
    take_sample,
)
from repro.pipeline.parallel import GesallPipeline

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


class TestSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ResourceSampler(0.0)
        with pytest.raises(ValueError):
            ResourceSampler(-1.0)

    def test_take_sample_fields(self):
        sample = take_sample()
        assert sample.t > 0.0
        assert sample.cpu_seconds >= 0.0
        assert sample.rss_bytes > 0
        assert sample.read_bytes >= 0
        assert sample.write_bytes >= 0
        assert sample.ctx_switches >= 0

    def test_at_least_two_samples_even_for_instant_tasks(self):
        # Interval far longer than the task: the immediate start sample
        # and the guaranteed stop sample must still both exist.
        sampler = ResourceSampler(60.0).start()
        samples = sampler.stop()
        assert len(samples) >= 2
        assert samples[-1].t >= samples[0].t

    def test_samples_accumulate_over_interval(self):
        with ResourceSampler(0.005) as sampler:
            time.sleep(0.04)
        assert len(sampler.samples) >= 4
        times = [sample.t for sample in sampler.samples]
        assert times == sorted(times)
        # Cumulative counters never decrease.
        cpu = [sample.cpu_seconds for sample in sampler.samples]
        assert cpu == sorted(cpu)

    def test_probe_sources_shape(self):
        sources = probe_sources()
        assert set(sources) == {"proc_statm", "proc_io", "getrusage"}

    def test_samples_pickle(self):
        import pickle

        sample = take_sample()
        assert pickle.loads(pickle.dumps(sample)) == sample


class TestMadScores:
    def test_empty_and_uniform(self):
        assert mad_scores([]) == []
        assert mad_scores([2.0, 2.0, 2.0]) == [0.0, 0.0, 0.0]

    def test_outlier_scores_high(self):
        scores = mad_scores([1.0, 1.1, 0.9, 1.0, 8.0])
        assert scores[-1] > MAD_THRESHOLD
        assert all(abs(score) < MAD_THRESHOLD for score in scores[:-1])

    def test_zero_mad_stays_finite(self):
        scores = mad_scores([1.0, 1.0, 1.0, 10.0])
        assert all(score == score and abs(score) != float("inf")
                   for score in scores)  # no NaN, no inf
        assert scores[-1] > MAD_THRESHOLD


def _history_with_straggler():
    history = JobHistory("job")
    for index, run_seconds in enumerate([1.0, 1.05, 0.95, 1.0, 9.0]):
        task = TaskAttempt(f"m-{index}", "map", f"n{index % 2}")
        task.run_seconds = run_seconds
        task.queued_seconds = 0.25
        history.add(task)
    reduce = TaskAttempt("r-0", "reduce", "n0")
    reduce.run_seconds = 2.0
    reduce.queued_seconds = 0.5
    history.add(reduce)
    return history


class TestStragglerDetection:
    def test_detects_the_slow_map(self):
        stragglers = detect_stragglers(_history_with_straggler())
        assert len(stragglers) == 1
        straggler = stragglers[0]
        assert straggler.task_id == "m-4"
        assert straggler.kind == "map"
        assert straggler.run_seconds == pytest.approx(9.0)
        assert straggler.score > MAD_THRESHOLD
        assert straggler.wave_median == pytest.approx(1.0)
        assert straggler.as_dict()["task_id"] == "m-4"

    def test_small_waves_and_untraced_histories_yield_nothing(self):
        history = JobHistory("job")
        for index in range(2):  # < 3 primaries
            task = TaskAttempt(f"m-{index}", "map", "n0")
            task.run_seconds = float(index + 1)
            history.add(task)
        assert detect_stragglers(history) == []
        untraced = JobHistory("job2")
        for index in range(5):  # run_seconds == 0.0 everywhere
            untraced.add(TaskAttempt(f"m-{index}", "map", "n0"))
        assert detect_stragglers(untraced) == []

    def test_speculative_attempts_not_scored(self):
        history = _history_with_straggler()
        spec = TaskAttempt("m-4-speculative", "map", "n1")
        spec.speculative = True
        spec.run_seconds = 50.0
        history.add(spec)
        stragglers = detect_stragglers(history)
        assert {s.task_id for s in stragglers} == {"m-4"}

    def test_queue_run_decomposition(self):
        out = queue_run_decomposition(_history_with_straggler())
        assert out["map"]["tasks"] == 5
        assert out["map"]["queued_seconds"] == pytest.approx(1.25)
        assert out["map"]["run_seconds"] == pytest.approx(13.0)
        assert out["reduce"]["tasks"] == 1
        assert out["total"]["tasks"] == 6
        assert 0.0 < out["total"]["queue_fraction"] < 1.0


class TestTimelinesAndCost:
    def _recorder(self):
        recorder = TraceRecorder()
        base = recorder.epoch
        recorder.ingest([
            Span("map", "phase", base + 0.0, base + 2.0, track="w0"),
            Span("map", "phase", base + 0.0, base + 2.0, track="w1"),
            Span("reduce", "phase", base + 2.0, base + 4.0, track="w0"),
            Span("m-0", "map-task", base + 0.0, base + 2.0, track="w0"),
            Span("m-1", "map-task", base + 0.0, base + 2.0, track="w1"),
            Span("r-0", "reduce-task", base + 2.0, base + 4.0, track="w0"),
        ])
        return recorder

    def test_phase_timeline_counts_concurrency(self):
        timeline = phase_timeline(self._recorder(), samples=8)
        assert timeline["horizon"] == pytest.approx(4.0)
        assert timeline["peak"]["map"] == 2
        assert timeline["peak"]["reduce"] == 1
        # Maps occupy the first half of the horizon, reduces the second.
        assert timeline["phases"]["map"][:4] == [2, 2, 2, 2]
        assert timeline["phases"]["map"][4:] == [0, 0, 0, 0]
        assert timeline["phases"]["reduce"][:4] == [0, 0, 0, 0]

    def test_phase_timeline_empty(self):
        timeline = phase_timeline(TraceRecorder(), samples=8)
        assert timeline["phases"] == {} and timeline["peak"] == {}

    def test_worker_cost_summary(self):
        cost = worker_cost_summary(self._recorder())
        assert cost["worker_count"] == 2
        assert cost["busy_worker_seconds"] == pytest.approx(6.0)
        # w0 paid 4s (two tasks back to back), w1 paid 2s.
        assert cost["paid_worker_seconds"] == pytest.approx(6.0)
        assert cost["utilization"] == pytest.approx(1.0)
        assert cost["parallelism"] == pytest.approx(1.5)
        assert cost["workers"]["w0"]["tasks"] == 2

    def test_analyze_bundle(self):
        out = analyze(self._recorder(),
                      [("round1", _history_with_straggler())])
        assert out["stragglers"][0]["round"] == "round1"
        assert "round1" in out["queue_run"]
        assert out["worker_cost"]["worker_count"] == 2
        assert out["phase_timeline"]["peak"]["map"] == 2
        # The whole bundle must survive JSON serialisation (reports,
        # CI artifacts).
        json.dumps(out)


def _bench(wall, counters=None, cpu_count=8):
    return {
        "schema_version": 2,
        "name": "demo",
        "host": {"cpu_count": cpu_count, "platform": "linux",
                 "python": "3.11"},
        "params": {},
        "wall_seconds": wall,
        "counters": counters or {},
    }


class TestCompare:
    def test_identical_passes(self):
        comparison = compare_benches(_bench(1.0), _bench(1.0))
        assert not comparison.failed
        assert [d.verdict for d in comparison.deltas] == ["ok"]

    def test_twenty_percent_regression_fails(self):
        comparison = compare_benches(_bench(1.0), _bench(1.2))
        assert comparison.failed
        (delta,) = comparison.regressions
        assert delta.metric == "wall_seconds"
        assert delta.ratio == pytest.approx(1.2)

    def test_noise_floor_suppresses_tiny_absolute_deltas(self):
        # 50% relative but only 10 ms absolute: noise on this scale.
        comparison = compare_benches(_bench(0.02), _bench(0.03))
        assert not comparison.failed

    def test_improvement_and_counter_changes(self):
        base = _bench(2.0, {"shuffle.bytes": 1000, "gc_seconds": 0.5})
        cand = _bench(1.0, {"shuffle.bytes": 5000, "gc_seconds": 0.5})
        comparison = compare_benches(base, cand)
        verdicts = {d.metric: d.verdict for d in comparison.deltas}
        assert verdicts["wall_seconds"] == "improvement"
        assert verdicts["shuffle.bytes"] == "changed"
        assert verdicts["gc_seconds"] == "ok"
        assert not comparison.failed  # changed counters are advisory

    def test_added_and_removed_metrics(self):
        base = _bench(1.0, {"old": 1})
        cand = _bench(1.0, {"new": 2})
        verdicts = {d.metric: d.verdict
                    for d in compare_benches(base, cand).deltas}
        assert verdicts["old"] == "removed"
        assert verdicts["new"] == "added"

    def test_host_mismatch_downgrades_to_advisory(self):
        base = _bench(1.0)
        cand = _bench(2.0, cpu_count=64)
        comparison = compare_benches(base, cand)
        assert comparison.host_mismatch
        assert not comparison.failed
        assert len(comparison.advisories) == 1
        strict = compare_benches(base, cand, strict_host=True)
        assert strict.failed

    def test_format_comparison_mentions_regression(self):
        text = format_comparison(compare_benches(_bench(1.0), _bench(1.5)))
        assert "regression" in text
        assert "wall_seconds" in text

    def test_load_bench_validation(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_bench(1.0)))
        assert load_bench(str(good))["wall_seconds"] == 1.0
        for bad_payload in (
            [1, 2, 3],                                   # not an object
            {"schema_version": 1, "name": "x"},          # too old
            {"schema_version": 2, "name": "x"},          # missing fields
            dict(_bench(1.0), counters=[]),              # bad counters
        ):
            bad = tmp_path / "bad.json"
            bad.write_text(json.dumps(bad_payload))
            with pytest.raises(ValueError):
                load_bench(str(bad))


def _sampled_job():
    def mapper(payload, ctx):
        deadline = time.perf_counter() + 0.05
        while time.perf_counter() < deadline:
            sum(range(500))
        for item in payload:
            ctx.emit(item % 2, item)

    def reducer(key, values, ctx):
        ctx.emit(key, sum(values))

    return JobConf("sampled", mapper, reducer, num_reducers=2)


SAMPLED_POLICIES = [
    ExecutionPolicy.serial(),
    ExecutionPolicy.threads(max_workers=2),
    pytest.param(ExecutionPolicy.processes(max_workers=2),
                 marks=needs_fork),
    pytest.param(ExecutionPolicy.pooled(max_workers=2), marks=needs_fork),
]


class TestEngineSampleIngestion:
    @pytest.mark.parametrize("policy", SAMPLED_POLICIES,
                             ids=lambda p: p.executor)
    def test_samples_become_timeseries(self, policy):
        recorder = ObsConfig(
            enabled=True, sample_interval=0.01
        ).build_recorder()
        engine = MapReduceEngine(nodes=["n0", "n1"], policy=policy,
                                 recorder=recorder)
        splits = make_splits([[1, 2, 3], [4, 5, 6]])
        result = engine.run(_sampled_job(), splits)
        assert sorted(result.all_outputs()) == [(0, 12), (1, 9)]
        series = recorder.metrics.all_timeseries()
        names = {s.name for s in series}
        assert "proc.rss_bytes" in names
        assert "proc.cpu_percent" in names
        rss = [s for s in series if s.name == "proc.rss_bytes"]
        assert all(s.tags.get("worker") for s in rss)
        assert any(len(s) >= 2 for s in rss)
        for s in rss:
            for t, value, tags in s.points():
                assert value > 0
                assert "task" in tags and "phase" in tags
                # Ingestion rebases onto the recorder epoch.
                assert -1.0 < t < recorder.horizon() + 1.0
        assert recorder.metrics.counter("obs.samples_ingested").value > 0

    def test_untraced_run_collects_no_samples(self):
        recorder = ObsConfig(enabled=True).build_recorder()  # interval 0
        engine = MapReduceEngine(
            nodes=["n0"], policy=ExecutionPolicy.serial(),
            recorder=recorder,
        )
        engine.run(_sampled_job(), make_splits([[1, 2]]))
        assert recorder.metrics.all_timeseries() == []


@needs_fork
class TestReportAcceptance:
    """Acceptance: pool executor, five rounds, sampled, HTML report."""

    @pytest.fixture(scope="class")
    def sampled_run(self, reference, ref_index, pairs):
        pipeline = GesallPipeline(
            reference, index=ref_index, num_fastq_partitions=5,
            num_reducers=2,
            policy=ExecutionPolicy.pooled(max_workers=2),
            obs=ObsConfig(enabled=True, sample_interval=0.01),
        )
        return pipeline.run(pairs)

    @pytest.fixture(scope="class")
    def html(self, sampled_run):
        histories = [(key, job_result.history) for key, job_result
                     in sampled_run.rounds.results.items()]
        return render_html_report(
            sampled_run.recorder, histories=histories,
            title="acceptance report",
            extra_meta={"executor": "pool"},
        )

    def test_report_is_self_contained_html(self, html):
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert 'href="http' not in html and 'src="http' not in html
        assert "acceptance report" in html

    def test_report_has_utilization_timeline(self, sampled_run, html):
        assert "Per-phase utilization" in html
        timeline = phase_timeline(sampled_run.recorder)
        assert timeline["peak"].get("map", 0) >= 1
        for name in timeline["phases"]:
            assert name in html

    def test_report_has_resource_series_per_worker(self, sampled_run,
                                                   html):
        series = sampled_run.recorder.metrics.all_timeseries()
        workers = {s.tags.get("worker") for s in series
                   if s.name == "proc.rss_bytes"}
        # Every pool worker that ran a task long enough to sample shows
        # up; the driver-side serial phases add more.
        assert len(workers) >= 2
        assert "Worker resource sampling" in html
        assert "proc.rss_bytes" in html and "proc.cpu_percent" in html
        assert html.count("<polyline") >= len(workers)

    def test_report_has_straggler_section(self, html):
        assert "Stragglers" in html

    def test_report_has_timeline_svg_and_queue_table(self, html):
        assert "Span timeline" in html
        assert "<svg" in html
        assert "Queue wait vs run time" in html
        assert "round1" in html


class TestCli:
    def _write_benches(self, tmp_path, base_wall, cand_wall):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_bench(base_wall)))
        cand.write_text(json.dumps(_bench(cand_wall)))
        return str(base), str(cand)

    def test_compare_exits_nonzero_on_regression(self, tmp_path,
                                                 capsys):
        base, cand = self._write_benches(tmp_path, 1.0, 1.25)
        assert main(["compare", base, cand]) == 1
        out = capsys.readouterr().out
        assert "regression" in out

    def test_compare_passes_identical(self, tmp_path, capsys):
        base, cand = self._write_benches(tmp_path, 1.0, 1.0)
        assert main(["compare", base, cand]) == 0

    def test_compare_json_output(self, tmp_path, capsys):
        base, cand = self._write_benches(tmp_path, 1.0, 1.25)
        out_path = tmp_path / "cmp.json"
        assert main(["compare", base, cand,
                     "--json", str(out_path)]) == 1
        payload = json.loads(out_path.read_text())
        assert payload["failed"] is True

    def test_compare_threshold_flag(self, tmp_path, capsys):
        base, cand = self._write_benches(tmp_path, 1.0, 1.25)
        assert main(["compare", base, cand, "--threshold", "0.5"]) == 0

    def test_compare_warns_on_pre_v2_baseline(self, tmp_path, capsys):
        """A committed baseline that predates schema v2 must warn and
        skip the comparison, never crash the gate."""
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"name": "old", "wall_seconds": 1.0}))
        _, cand = self._write_benches(tmp_path, 1.0, 1.0)
        assert main(["compare", str(stale), cand]) == 0
        out = capsys.readouterr().out
        assert "predates bench schema v2" in out
        assert "skipping comparison" in out

    def test_compare_errors_on_pre_v2_candidate(self, tmp_path, capsys):
        """Only the *baseline* gets leniency; a stale candidate means
        the bench itself is broken."""
        base, _ = self._write_benches(tmp_path, 1.0, 1.0)
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"name": "old", "wall_seconds": 1.0}))
        assert main(["compare", base, str(stale)]) == 2
        assert "schema_version" in capsys.readouterr().err

    def test_compare_errors_on_unparsable_baseline(self, tmp_path,
                                                   capsys):
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        _, cand = self._write_benches(tmp_path, 1.0, 1.0)
        assert main(["compare", str(broken), cand]) == 2
        assert capsys.readouterr().err

    @needs_fork
    def test_report_subcommand_writes_html(self, tmp_path, capsys):
        data = tmp_path / "data"
        assert main(["simulate", "--out", str(data),
                     "--length", "4000", "--coverage", "4",
                     "--seed", "5"]) == 0
        out = tmp_path / "report.html"
        assert main(["report", "--data", str(data),
                     "--out", str(out),
                     "--executor", "pool", "--max-workers", "2",
                     "--partitions", "3",
                     "--sample-interval", "0.01"]) == 0
        html = out.read_text()
        assert "Per-phase utilization" in html
        assert "proc.rss_bytes" in html
        stdout = capsys.readouterr().out
        assert "resource series" in stdout
