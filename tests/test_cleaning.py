"""Unit tests for the cleaning stages (PicardTools equivalents)."""

import pytest

from repro.cleaning.clean_sam import CleanSam
from repro.cleaning.duplicates import (
    MarkDuplicates,
    duplicate_count,
    fragment_key,
    mark_duplicates_in_place,
    pair_key,
    pair_score,
)
from repro.cleaning.fix_mate import FixMateInformation
from repro.cleaning.read_groups import AddOrReplaceReadGroups
from repro.cleaning.sort import (
    ExternalMergeSorter,
    SortSam,
    coordinate_key,
    queryname_key,
)
from repro.errors import PipelineError
from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import SamHeader, SamRecord, encode_quals


def rec(qname="r1", flag_bits=0, rname="chr1", pos=100, mapq=60,
        cigar="10M", seq="ACGTACGTAC", quals=None, **kw):
    quals = quals or [30] * 10
    return SamRecord(
        qname, F.SamFlags(flag_bits), rname, pos, mapq, Cigar.parse(cigar),
        seq=seq, qual=encode_quals(quals), **kw,
    )


def header():
    return SamHeader(sequences=[("chr1", 9000), ("chr2", 7000)])


def make_pair(qname, pos1, pos2, cigar1="10M", cigar2="10M", quals=None,
              rname="chr1", mapped2=True):
    bits1 = F.PAIRED | F.FIRST_IN_PAIR
    bits2 = F.PAIRED | F.SECOND_IN_PAIR | F.REVERSE
    if not mapped2:
        bits2 = F.PAIRED | F.SECOND_IN_PAIR | F.UNMAPPED
        bits1 |= F.MATE_UNMAPPED
    end1 = rec(qname, bits1, rname, pos1, cigar=cigar1, quals=quals)
    end2 = rec(
        qname, bits2, rname, pos2,
        cigar="*" if not mapped2 else cigar2,
        mapq=0 if not mapped2 else 60,
        quals=quals,
    )
    return end1, end2


class TestAddOrReplaceReadGroups:
    def test_tags_every_record(self):
        program = AddOrReplaceReadGroups(group_id="G7", sample="S")
        out_header, out = program.run(header(), [rec("a"), rec("b")])
        assert all(r.tags["RG"] == "G7" for r in out)
        assert out_header.read_groups[0]["ID"] == "G7"
        assert out_header.read_groups[0]["SM"] == "S"

    def test_replaces_existing_group(self):
        record = rec("a")
        record.tags["RG"] = "OLD"
        _, out = AddOrReplaceReadGroups(group_id="NEW").run(header(), [record])
        assert out[0].tags["RG"] == "NEW"

    def test_input_not_mutated(self):
        record = rec("a")
        AddOrReplaceReadGroups().run(header(), [record])
        assert "RG" not in record.tags


class TestCleanSam:
    def test_drops_overhanging_alignment(self):
        overhang = rec("a", pos=8995, cigar="10M")
        ok = rec("b", pos=100)
        program = CleanSam()
        _, out = program.run(header(), [overhang, ok])
        assert [r.qname for r in out] == ["b"]
        assert program.stats.dropped_overhanging == 1

    def test_fixes_unmapped_mapq_and_cigar(self):
        bad = rec("a", flag_bits=F.UNMAPPED, mapq=60, cigar="10M")
        program = CleanSam()
        _, out = program.run(header(), [bad])
        assert out[0].mapq == 0
        assert str(out[0].cigar) == "*"
        assert program.stats.fixed_unmapped_mapq == 1
        assert program.stats.cleared_unmapped_cigar == 1

    def test_drops_unknown_contig(self):
        _, out = CleanSam().run(header(), [rec("a", rname="chrZ")])
        assert out == []

    def test_mapq_255_normalised(self):
        _, out = CleanSam().run(header(), [rec("a", mapq=255)])
        assert out[0].mapq == 0

    def test_clean_input_passes_through(self):
        records = [rec("a"), rec("b", pos=200)]
        program = CleanSam()
        _, out = program.run(header(), records)
        assert len(out) == 2
        assert program.stats.records_in == 2
        assert program.stats.records_out == 2


class TestFixMateInformation:
    def test_mate_fields_filled(self):
        end1, end2 = make_pair("p", 100, 300)
        _, out = FixMateInformation().run(header(), [end1, end2])
        first = next(r for r in out if r.flags.is_first_in_pair)
        second = next(r for r in out if r.flags.is_second_in_pair)
        assert first.pnext == 300
        assert second.pnext == 100
        assert first.rnext == "="
        assert first.tags["MC"] == "10M"
        assert first.tags["MQ"] == "60"

    def test_tlen_signed_and_symmetric(self):
        end1, end2 = make_pair("p", 100, 300)
        _, out = FixMateInformation().run(header(), [end1, end2])
        tlens = sorted(r.tlen for r in out)
        assert tlens[0] == -tlens[1]
        assert tlens[1] == 300 + 9 - 100 + 1

    def test_mate_unmapped_flags(self):
        end1, end2 = make_pair("p", 100, 100, mapped2=False)
        _, out = FixMateInformation().run(header(), [end1, end2])
        first = next(r for r in out if r.flags.is_first_in_pair)
        assert first.flags.is_mate_unmapped
        assert first.tlen == 0

    def test_unpaired_read_passthrough(self):
        single = rec("solo")
        _, out = FixMateInformation().run(header(), [single])
        assert out == [single]

    def test_missing_mate_raises(self):
        end1, _ = make_pair("p", 100, 300)
        with pytest.raises(PipelineError):
            FixMateInformation().run(header(), [end1])


class TestSortSam:
    def test_coordinate_order(self):
        records = [rec("a", pos=500), rec("b", pos=10, rname="chr2"),
                   rec("c", pos=100)]
        _, out = SortSam("coordinate").run(header(), records)
        assert [r.qname for r in out] == ["c", "a", "b"]

    def test_unmapped_sort_last(self):
        unmapped = rec("u", flag_bits=F.UNMAPPED, rname="*", pos=0, cigar="*")
        mapped = rec("m", pos=100)
        _, out = SortSam("coordinate").run(header(), [unmapped, mapped])
        assert [r.qname for r in out] == ["m", "u"]

    def test_queryname_order(self):
        records = [
            rec("b", flag_bits=F.PAIRED | F.SECOND_IN_PAIR),
            rec("a", flag_bits=F.PAIRED | F.FIRST_IN_PAIR),
            rec("b", flag_bits=F.PAIRED | F.FIRST_IN_PAIR),
        ]
        _, out = SortSam("queryname").run(header(), records)
        assert [(r.qname, r.flags.is_second_in_pair) for r in out] == [
            ("a", False), ("b", False), ("b", True)
        ]

    def test_header_sort_order_updated(self):
        out_header, _ = SortSam("coordinate").run(header(), [])
        assert out_header.sort_order == "coordinate"

    def test_invalid_order_rejected(self):
        with pytest.raises(PipelineError):
            SortSam("banana")


class TestExternalMergeSorter:
    def test_matches_in_memory_sort(self, aligned):
        subset = [r.copy() for r in aligned[:500]]
        key = coordinate_key(SamHeader(sequences=[("chr1", 9000), ("chr2", 7000)]))
        sorter = ExternalMergeSorter(key, max_records_in_ram=64)
        external = [r.to_line() for r in sorter.sort(iter(subset))]
        in_memory = [r.to_line() for r in sorted(subset, key=key)]
        assert external == in_memory
        assert sorter.spill_count > 1

    def test_small_input_no_spill(self):
        key = queryname_key()
        sorter = ExternalMergeSorter(key, max_records_in_ram=100)
        records = [rec("b"), rec("a")]
        out = list(sorter.sort(records))
        assert [r.qname for r in out] == ["a", "b"]
        assert sorter.spill_count == 1

    def test_invalid_buffer_rejected(self):
        with pytest.raises(PipelineError):
            ExternalMergeSorter(queryname_key(), max_records_in_ram=0)


class TestMarkDuplicatesKeys:
    def test_fragment_key_uses_unclipped_end(self):
        plain = rec("a", pos=100, cigar="10M")
        clipped = rec("b", pos=103, cigar="3S7M")
        assert fragment_key(plain) == fragment_key(clipped)

    def test_pair_key_orientation_independent(self):
        e1, e2 = make_pair("p", 100, 300)
        assert pair_key(e1, e2) == pair_key(e2, e1)

    def test_pair_score_sums_good_bases(self):
        e1, e2 = make_pair("p", 100, 300, quals=[20] * 10)
        assert pair_score(e1, e2) == 400


class TestMarkDuplicates:
    def test_duplicate_pair_marked(self):
        pair_a = make_pair("a", 100, 300, quals=[35] * 10)
        pair_b = make_pair("b", 100, 300, quals=[20] * 10)
        records = [*pair_a, *pair_b]
        stats = mark_duplicates_in_place(records)
        assert stats.duplicate_pairs == 1
        assert not pair_a[0].flags.is_duplicate
        assert pair_b[0].flags.is_duplicate
        assert pair_b[1].flags.is_duplicate

    def test_unclipped_end_equivalence(self):
        # Same physical fragment, one copy clipped: still duplicates.
        pair_a = make_pair("a", 100, 300, quals=[35] * 10)
        pair_b = make_pair("b", 103, 300, cigar1="3S7M", quals=[20] * 10)
        records = [*pair_a, *pair_b]
        stats = mark_duplicates_in_place(records)
        assert stats.duplicate_pairs == 1

    def test_different_positions_not_duplicates(self):
        records = [*make_pair("a", 100, 300), *make_pair("b", 150, 350)]
        stats = mark_duplicates_in_place(records)
        assert stats.duplicate_pairs == 0
        assert duplicate_count(records) == 0

    def test_partial_matching_vs_complete_pair(self):
        complete = make_pair("a", 100, 300)
        partial = make_pair("b", 100, 100, mapped2=False)
        records = [*complete, *partial]
        stats = mark_duplicates_in_place(records)
        # The partial's mapped read coincides with a complete pair's 5'
        # end => duplicate (criterion 2); the complete pair survives.
        assert partial[0].flags.is_duplicate
        assert not complete[0].flags.is_duplicate
        assert stats.duplicate_fragments == 1

    def test_partials_compete_among_themselves(self):
        p1 = make_pair("a", 100, 100, mapped2=False, quals=[35] * 10)
        p2 = make_pair("b", 100, 100, mapped2=False, quals=[20] * 10)
        records = [*p1, *p2]
        mark_duplicates_in_place(records)
        assert not p1[0].flags.is_duplicate
        assert p2[0].flags.is_duplicate

    def test_unmapped_reads_never_marked(self):
        partial = make_pair("a", 100, 100, mapped2=False)
        mark_duplicates_in_place(list(partial))
        assert not partial[1].flags.is_duplicate

    def test_strand_is_part_of_key(self):
        # Same positions but the pair orientations differ: not duplicates.
        e1 = rec("a", F.PAIRED | F.FIRST_IN_PAIR, pos=100)
        e2 = rec("a", F.PAIRED | F.SECOND_IN_PAIR | F.REVERSE, pos=300)
        f1 = rec("b", F.PAIRED | F.FIRST_IN_PAIR | F.REVERSE, pos=100)
        f2 = rec("b", F.PAIRED | F.SECOND_IN_PAIR, pos=300)
        stats = mark_duplicates_in_place([e1, e2, f1, f2])
        assert stats.duplicate_pairs == 0

    def test_tie_broken_by_encounter_order(self):
        pair_a = make_pair("a", 100, 300, quals=[30] * 10)
        pair_b = make_pair("b", 100, 300, quals=[30] * 10)
        forward = [*pair_a, *pair_b]
        mark_duplicates_in_place(forward)
        winner_forward = "a" if not pair_a[0].flags.is_duplicate else "b"
        pair_a2 = make_pair("a", 100, 300, quals=[30] * 10)
        pair_b2 = make_pair("b", 100, 300, quals=[30] * 10)
        mark_duplicates_in_place([*pair_b2, *pair_a2])
        winner_reversed = "a" if not pair_a2[0].flags.is_duplicate else "b"
        assert winner_forward != winner_reversed

    def test_program_wrapper_counts(self, sam_header, aligned):
        program = MarkDuplicates()
        _, out = program.run(sam_header, aligned[:400])
        assert duplicate_count(out) == program.stats.duplicate_records

    def test_full_dataset_duplicates_found(self, sam_header, aligned,
                                           fragments):
        program = MarkDuplicates()
        _, out = program.run(sam_header, aligned)
        truth_dups = sum(1 for f in fragments if f.is_duplicate)
        found_pairs = program.stats.duplicate_pairs
        # Most simulated PCR duplicates are detected (some end up in
        # partial matchings or unmapped).
        assert found_pairs + program.stats.duplicate_fragments > 0.5 * truth_dups

    def test_rerun_is_idempotent_in_count(self, sam_header, aligned):
        program = MarkDuplicates()
        _, once = program.run(sam_header, aligned[:600])
        count_once = duplicate_count(once)
        _, twice = MarkDuplicates().run(sam_header, once)
        assert duplicate_count(twice) == count_once
