"""Chaos-harness tests: fault plans, hung-task handling, blacklisting,
and the acceptance scenario — a node kill plus a hung task must not
change a single byte of the five-round pipeline's output.
"""

import json

import pytest

from repro.chaos import (
    CorruptReplica,
    DecommissionDatanode,
    DelayTask,
    FaultPlan,
    KillDatanode,
    RaiseInTask,
)
from repro.chaos.plan import ColdStart, PreemptWorker
from repro.chaos.plan import parse_event
from repro.cli import main
from repro.errors import MapReduceError
from repro.mapreduce import counters as C
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.executors import fork_available
from repro.mapreduce.job import JobConf, make_splits
from repro.mapreduce.policy import ExecutionPolicy
from repro.pipeline.parallel import GesallPipeline

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

NODES = [f"node{i:02d}" for i in range(4)]


def wordcount_job(name="wc"):
    def mapper(line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def reducer(word, counts, ctx):
        ctx.emit(word, sum(counts))

    return JobConf(name, mapper, reducer, num_reducers=2)


LINES = [
    "the quick brown fox",
    "jumps over the lazy dog",
    "the dog barks",
    "quick quick slow",
]


class TestFaultPlan:
    def test_demo_is_deterministic(self):
        assert FaultPlan.demo(5, NODES) == FaultPlan.demo(5, NODES)
        kill = FaultPlan.demo(5, NODES).events[0]
        assert isinstance(kill, KillDatanode)
        assert kill.node in NODES

    def test_demo_needs_nodes(self):
        with pytest.raises(MapReduceError):
            FaultPlan.demo(0, [])

    def test_rejects_unknown_event_and_negative_delay(self):
        with pytest.raises(MapReduceError, match="unknown fault event"):
            FaultPlan(events=("not-an-event",))
        with pytest.raises(MapReduceError, match=">= 0"):
            FaultPlan(events=(DelayTask("t", seconds=-1.0),))

    def test_event_keying(self):
        plan = FaultPlan(events=(
            KillDatanode("n1", at_round="round3"),
            DelayTask("t-m-00000", 2.0, attempt=1),
            DelayTask("t-m-00000", 3.0, attempt=1),
            RaiseInTask("t-r-00001", attempt=2),
        ))
        assert [e.node for e in plan.storage_events("round3")] == ["n1"]
        assert plan.storage_events("round1") == []
        assert plan.delay_for("t-m-00000", 1) == 5.0
        assert plan.delay_for("t-m-00000", 2) == 0.0
        assert plan.raises_in("t-r-00001", 2)
        assert not plan.raises_in("t-r-00001", 1)
        assert plan.touches_tasks()

    def test_plan_rides_inside_a_frozen_policy(self):
        plan = FaultPlan(events=(RaiseInTask("t", attempt=1),))
        policy = ExecutionPolicy(fault_plan=plan, task_retries=1)
        assert policy.fault_plan is plan
        assert hash(plan) == hash(FaultPlan(events=(RaiseInTask("t"),)))

    def test_as_dicts_and_describe(self):
        plan = FaultPlan.demo(5, NODES)
        kinds = [e["kind"] for e in plan.as_dicts()]
        assert kinds == ["kill_datanode", "delay_task"]
        assert "kill_datanode" in plan.describe()


class TestParseEvent:
    def test_all_kinds_round_trip(self):
        assert parse_event("n1@round3", "kill") == \
            KillDatanode("n1", at_round="round3")
        assert parse_event("n2@round2", "decommission") == \
            DecommissionDatanode("n2", at_round="round2")
        assert parse_event("/f@round2:1:1", "corrupt") == CorruptReplica(
            "/f", at_round="round2", block_index=1, replica_index=1
        )
        assert parse_event("/f@round2", "corrupt") == \
            CorruptReplica("/f", at_round="round2")
        assert parse_event("round4-sort-m-00000:30.5@2", "delay") == \
            DelayTask("round4-sort-m-00000", 30.5, attempt=2)
        assert parse_event("t-m-00000:1.5", "delay") == \
            DelayTask("t-m-00000", 1.5, attempt=1)
        assert parse_event("t-r-00001@3", "fail") == \
            RaiseInTask("t-r-00001", attempt=3)
        assert parse_event("t-r-00001", "fail") == RaiseInTask("t-r-00001")
        assert parse_event("round2-cleaning:reduce:1", "preempt") == \
            PreemptWorker("round2-cleaning", wave="reduce", task=1)
        assert parse_event("round1-alignment", "preempt") == \
            PreemptWorker("round1-alignment", wave="map", task=0)
        assert parse_event("0.25@round4-sort", "cold-start") == \
            ColdStart(0.25, job="round4-sort")
        assert parse_event("0.25", "cold-start") == ColdStart(0.25)

    def test_bad_specs_raise(self):
        with pytest.raises(MapReduceError, match="bad --kill"):
            parse_event("no-round-marker", "kill")
        with pytest.raises(MapReduceError, match="bad --delay"):
            parse_event("task-without-seconds", "delay")
        with pytest.raises(MapReduceError, match="unknown event kind"):
            parse_event("x", "meteor")

    def test_bad_specs_name_field_and_grammar(self):
        """Malformed specs must name the bad field and quote the
        accepted grammar, not dump a traceback."""
        with pytest.raises(
            MapReduceError,
            match=r"WAVE must be 'map' or 'reduce'.*"
                  r"expected --preempt JOB\[:WAVE\[:TASK\]\]",
        ):
            parse_event("round1-alignment:sideways", "preempt")
        with pytest.raises(
            MapReduceError,
            match=r"TASK must be an integer, got 'two'.*--preempt",
        ):
            parse_event("round1-alignment:map:two", "preempt")
        with pytest.raises(
            MapReduceError,
            match=r"SECONDS must be a number, got 'slow'.*"
                  r"expected --cold-start SECONDS\[@JOB\]",
        ):
            parse_event("slow", "cold-start")
        with pytest.raises(
            MapReduceError,
            match=r"SECONDS must be a number.*--delay TASK:SECONDS",
        ):
            parse_event("t-m-00000:abc", "delay")
        with pytest.raises(
            MapReduceError,
            match=r"missing '@ROUND'.*--kill NODE@ROUND",
        ):
            parse_event("node01", "kill")
        with pytest.raises(
            MapReduceError,
            match=r"BLOCK must be an integer.*--corrupt PATH@ROUND",
        ):
            parse_event("/f@round2:x", "corrupt")


class TestPolicyKnobs:
    def test_rejects_bad_timeout_and_blacklist(self):
        with pytest.raises(MapReduceError):
            ExecutionPolicy(task_timeout=0)
        with pytest.raises(MapReduceError):
            ExecutionPolicy(task_timeout=-1.0)
        with pytest.raises(MapReduceError):
            ExecutionPolicy(blacklist_after=0)

    def test_backoff_is_charged_not_slept(self):
        """Retry backoff is recorded in the accounting but never goes
        through the sleep hook — a retry storm cannot stall the wall
        clock (injected delays still sleep; see TestHungTasks)."""
        from repro.obs.recorder import TraceRecorder

        sleeps = []
        policy = ExecutionPolicy(
            task_retries=1, retry_backoff=0.125, retry_backoff_cap=0.125,
            fault_plan=FaultPlan(events=(RaiseInTask("wc-m-00000"),)),
            sleep=sleeps.append,
        )
        recorder = TraceRecorder()
        MapReduceEngine(
            nodes=["n1"], policy=policy, recorder=recorder
        ).run(wordcount_job(), make_splits(LINES))
        assert sleeps == []  # charged, never slept
        counters = recorder.metrics.as_dict()["counters"]
        assert counters["engine.backoff_charged_seconds"] == \
            pytest.approx(0.125)

    def test_retry_delay_jitter_is_deterministic_and_bounded(self):
        policy = ExecutionPolicy(
            retry_backoff=0.1, retry_backoff_cap=0.4, retry_jitter=0.5,
            fault_seed=9,
        )
        plain = ExecutionPolicy(retry_backoff=0.1, retry_backoff_cap=0.4)
        for attempt in (1, 2, 3):
            base = plain.backoff_delay(attempt)
            delay = policy.retry_delay("wc-m-00000", attempt)
            assert delay == policy.retry_delay("wc-m-00000", attempt)
            assert base <= delay <= base * 1.5
        # Different tasks de-synchronise.
        assert policy.retry_delay("wc-m-00000", 1) != \
            policy.retry_delay("wc-m-00001", 1)


class TestHungTasks:
    def test_hung_task_times_out_and_retries_on_another_node(self):
        sleeps = []
        plan = FaultPlan(events=(
            DelayTask("wc-m-00000", seconds=30.0, attempt=1),
        ))
        policy = ExecutionPolicy(
            task_retries=2, task_timeout=5.0, retry_backoff=0.0,
            fault_plan=plan, sleep=sleeps.append,
        )
        result = MapReduceEngine(nodes=["n1", "n2"], policy=policy).run(
            wordcount_job(), make_splits(LINES)
        )
        clean = MapReduceEngine(nodes=["n1", "n2"]).run(
            wordcount_job(), make_splits(LINES)
        )
        assert result.all_outputs() == clean.all_outputs()
        assert result.counters.get(C.TASK_TIMEOUTS) == 1
        assert result.counters.get(C.INJECTED_DELAYS) == 1
        task = result.history.find("wc-m-00000")
        assert task.attempts == 2
        assert task.timeouts == 1
        assert task.node == "n2"  # first attempt ran (and hung) on n1
        assert 30.0 in sleeps  # the delay was slept through the hook

    def test_timeout_exhausts_retries(self):
        plan = FaultPlan(events=(
            DelayTask("wc-m-00000", 30.0, attempt=1),
            DelayTask("wc-m-00000", 30.0, attempt=2),
        ))
        policy = ExecutionPolicy(
            task_retries=1, task_timeout=5.0, retry_backoff=0.0,
            fault_plan=plan, sleep=lambda _s: None,
        )
        with pytest.raises(MapReduceError, match="after 2 attempt"):
            MapReduceEngine(nodes=["n1", "n2"], policy=policy).run(
                wordcount_job(), make_splits(LINES)
            )

    def test_injected_raise_is_absorbed_by_retry(self):
        plan = FaultPlan(events=(RaiseInTask("wc-m-00001", attempt=1),))
        policy = ExecutionPolicy(
            task_retries=2, retry_backoff=0.0, fault_plan=plan,
            sleep=lambda _s: None,
        )
        result = MapReduceEngine(nodes=["n1", "n2"], policy=policy).run(
            wordcount_job(), make_splits(LINES)
        )
        clean = MapReduceEngine(nodes=["n1", "n2"]).run(
            wordcount_job(), make_splits(LINES)
        )
        assert result.all_outputs() == clean.all_outputs()
        task = result.history.find("wc-m-00001")
        assert task.attempts == 2
        assert task.injected_faults == 1

    @pytest.mark.parametrize(
        "kind", ["serial", "thread", pytest.param("process", marks=needs_fork)]
    )
    def test_plan_faults_identical_across_executors(self, kind):
        plan = FaultPlan(events=(
            DelayTask("wc-m-00000", 30.0, attempt=1),
            RaiseInTask("wc-m-00002", attempt=1),
        ))
        clean = MapReduceEngine(nodes=["n1", "n2"]).run(
            wordcount_job(), make_splits(LINES)
        )
        policy = ExecutionPolicy(
            executor=kind, max_workers=2, task_retries=3,
            task_timeout=5.0, retry_backoff=0.0, fault_plan=plan,
            sleep=lambda _s: None,
        )
        result = MapReduceEngine(nodes=["n1", "n2"], policy=policy).run(
            wordcount_job(), make_splits(LINES)
        )
        assert result.all_outputs() == clean.all_outputs()
        assert result.counters.get(C.TASK_TIMEOUTS) == 1
        assert result.counters.get(C.INJECTED_FAULTS) == 1


class TestBlacklist:
    def test_failing_node_is_blacklisted_and_avoided(self):
        plan = FaultPlan(events=(RaiseInTask("wc-m-00000", attempt=1),))
        policy = ExecutionPolicy(
            task_retries=2, blacklist_after=1, retry_backoff=0.0,
            fault_plan=plan, sleep=lambda _s: None,
        )
        engine = MapReduceEngine(nodes=["n1", "n2"], policy=policy)
        result = engine.run(wordcount_job(), make_splits(LINES))
        # The fault fired on the first candidate node of map task 0.
        assert engine.blacklisted_nodes == {"n1"}
        events = result.history.events_of("node_blacklisted")
        assert len(events) == 1
        assert events[0]["node"] == "n1"
        assert events[0]["failures"] == 1
        # The reduce wave, scheduled after the blacklisting, avoids n1.
        assert {t.node for t in result.history.reduces()} == {"n2"}

    def test_blacklist_persists_across_jobs_on_the_same_engine(self):
        plan = FaultPlan(events=(RaiseInTask("first-m-00000", attempt=1),))
        policy = ExecutionPolicy(
            task_retries=2, blacklist_after=1, retry_backoff=0.0,
            fault_plan=plan, sleep=lambda _s: None,
        )
        engine = MapReduceEngine(nodes=["n1", "n2"], policy=policy)
        engine.run(wordcount_job("first"), make_splits(LINES))
        assert engine.blacklisted_nodes == {"n1"}
        second = engine.run(wordcount_job("second"), make_splits(LINES))
        assert {t.node for t in second.history.tasks} == {"n2"}

    def test_fully_blacklisted_cluster_still_schedules(self):
        """A cluster that refuses all work is worse than one that
        schedules onto suspect nodes — blacklisting every node falls
        back to the full node list."""
        plan = FaultPlan(events=(RaiseInTask("wc-m-00000", attempt=1),))
        policy = ExecutionPolicy(
            task_retries=2, blacklist_after=1, retry_backoff=0.0,
            fault_plan=plan, sleep=lambda _s: None,
        )
        engine = MapReduceEngine(nodes=["n1"], policy=policy)
        engine.run(wordcount_job(), make_splits(LINES))
        assert engine.blacklisted_nodes == {"n1"}
        second = engine.run(wordcount_job("again"), make_splits(LINES))
        assert {t.node for t in second.history.tasks} == {"n1"}


def run_pipeline(reference, ref_index, pairs, policy):
    """Full five-round run; returns (result, comparable fingerprint)."""
    result = GesallPipeline(
        reference, index=ref_index, nodes=NODES,
        num_fastq_partitions=4, num_reducers=3, policy=policy,
    ).run(pairs)
    files = {f.path: result.hdfs.get(f.path) for f in result.hdfs.files()}
    variants = [v.to_line() for v in result.variants]
    return result, (files, variants)


class TestChaosAcceptance:
    """The ISSUE's acceptance scenario: kill a datanode when round 3
    starts and hang one round-4 task past its timeout — the pipeline
    must finish with output identical to a clean run, under every
    executor."""

    @pytest.fixture(scope="class")
    def clean_run(self, reference, ref_index, pairs):
        _, fingerprint = run_pipeline(
            reference, ref_index, pairs, ExecutionPolicy.serial()
        )
        return fingerprint

    @pytest.mark.parametrize(
        "kind,max_workers",
        [
            ("serial", 1),
            ("thread", 4),
            pytest.param("process", 2, marks=needs_fork),
        ],
    )
    def test_kill_plus_hung_task_changes_nothing(
        self, reference, ref_index, pairs, clean_run, kind, max_workers
    ):
        plan = FaultPlan.demo(seed=5, nodes=NODES)
        policy = ExecutionPolicy(
            executor=kind, max_workers=max_workers, task_retries=3,
            task_timeout=30.0, retry_backoff=0.0, fault_plan=plan,
            sleep=lambda _s: None,
        )
        result, fingerprint = run_pipeline(
            reference, ref_index, pairs, policy
        )
        assert fingerprint == clean_run
        # The kill fired at the round-3 boundary and lost no blocks.
        kills = [
            e for e in result.chaos_events if e["kind"] == "kill_datanode"
        ]
        assert len(kills) == 1
        assert kills[0]["round"] == "round3"
        assert kills[0]["lost"] == 0
        # The hung round-4 task timed out once and was retried.
        summary = result.rounds.results["round4"].history.summary()
        assert summary["timeouts"] == 1
        assert summary["retried_tasks"] == 1


def test_chaos_cli_gate_passes(tmp_path, capsys):
    data = tmp_path / "sample"
    assert main([
        "simulate", "--out", str(data), "--length", "3000",
        "--coverage", "6", "--seed", "3",
    ]) == 0
    trace = tmp_path / "chaos-trace.json"
    report = tmp_path / "chaos-report.json"
    rc = main([
        "chaos", "--data", str(data), "--partitions", "2",
        "--executor", "thread", "--max-workers", "2", "--seed", "5",
        "--trace-out", str(trace), "--report-out", str(report),
    ])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "GATE PASSED" in out
    payload = json.loads(report.read_text())
    assert payload["gate"]["equivalent"] is True
    assert payload["gate"]["weighted_d_count"] == 0
    assert payload["plan"]["events"][0]["kind"] == "kill_datanode"
    assert any(
        name.startswith("chaos.") for name in payload["fault_counters"]
    )
    assert json.loads(trace.read_text())["traceEvents"]
