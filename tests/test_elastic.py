"""Elastic execution tests: the scaling controller, spot-style worker
preemption, cold-start charging, and deterministic retry backoff.

The elastic executor's contract extends the pool's: byte-identical
outputs under every scaling decision and every preemption, with the
controller's moves visible as history events and ``pool.scale.*``
metrics rather than as output differences.
"""

import pytest

from repro.chaos.plan import ColdStart, FaultPlan, PreemptWorker
from repro.mapreduce import counters as C
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.executors import (
    ElasticPoolExecutor,
    PoolJobContext,
    fork_available,
)
from repro.mapreduce.job import InputSplit, JobConf, make_splits
from repro.mapreduce.policy import ExecutionPolicy
from repro.obs.recorder import TraceRecorder
from repro.pipeline.parallel import GesallPipeline

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)
pytestmark = needs_fork

NODES = [f"node{i:02d}" for i in range(4)]

LINES = [
    "the quick brown fox",
    "jumps over the lazy dog",
    "the dog barks",
    "quick quick slow",
]


def wordcount_job(name="wc"):
    def mapper(line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def reducer(word, counts, ctx):
        ctx.emit(word, sum(counts))

    return JobConf(name, mapper, reducer, num_reducers=2)


def clean_outputs():
    return MapReduceEngine(nodes=NODES).run(
        wordcount_job(), make_splits(LINES)
    ).all_outputs()


def _context(num_bodies):
    return PoolJobContext(
        job=None,
        policy=ExecutionPolicy.serial(),
        map_bodies=[lambda epoch, candidates=None: None] * num_bodies,
    )


class TestScalingController:
    def test_rejects_bad_bounds(self):
        from repro.errors import MapReduceError

        with pytest.raises(MapReduceError):
            ElasticPoolExecutor(2, min_workers=3)
        with pytest.raises(MapReduceError):
            ElasticPoolExecutor(2, min_workers=0)

    def test_initial_fork_tracks_first_wave_demand(self):
        executor = ElasticPoolExecutor(8, min_workers=2)
        try:
            executor.begin_job(_context(3))
            assert len(executor._workers) == 3  # demand, not max
        finally:
            executor.close()

    def test_initial_fork_respects_floor_and_ceiling(self):
        executor = ElasticPoolExecutor(4, min_workers=2)
        try:
            executor.begin_job(_context(1))
            assert len(executor._workers) == 2  # floor wins
            executor.end_job()
            executor.begin_job(_context(40))
            assert len(executor._workers) == 4  # ceiling wins
        finally:
            executor.close()

    def test_queue_pressure_grows_toward_demand(self):
        executor = ElasticPoolExecutor(8, min_workers=2)
        try:
            executor.begin_job(_context(3))
            decision = executor.rebalance(8, queue_fraction=0.9)
            assert decision["action"] == "scale_up"
            assert decision["from_workers"] == 3
            assert decision["to_workers"] == 6  # doubling pace
            assert len(executor._workers) == 6
            assert executor.scale_ups == 1
        finally:
            executor.close()

    def test_idle_slots_are_drained_then_retired(self):
        executor = ElasticPoolExecutor(8, min_workers=2)
        try:
            executor.begin_job(_context(8))
            decision = executor.rebalance(8, queue_fraction=0.0)
            assert decision["action"] == "scale_down"
            assert decision["to_workers"] == 4  # halving pace
            assert executor.workers_retired == 4
            assert executor.scale_downs == 1
        finally:
            executor.close()

    def test_never_grows_past_next_wave_demand(self):
        executor = ElasticPoolExecutor(8, min_workers=1)
        try:
            executor.begin_job(_context(6))
            decision = executor.rebalance(2, queue_fraction=0.9)
            # Queue pressure says double, but the coming wave only has
            # 2 tasks: paying for more slots could never help.
            assert decision["to_workers"] == 2
        finally:
            executor.close()

    def test_never_retires_below_min_workers(self):
        executor = ElasticPoolExecutor(8, min_workers=3)
        try:
            executor.begin_job(_context(8))
            for _ in range(5):
                executor.rebalance(1, queue_fraction=0.0)
            assert len(executor._workers) == 3
        finally:
            executor.close()

    def test_clock_free_fallback_is_seeded_and_deterministic(self):
        """With tracing off there is no queue clock; the fallback
        steps toward demand by a (seed, decision-index) draw, so two
        pools with the same seed make identical moves."""

        def run_decisions(seed):
            executor = ElasticPoolExecutor(8, min_workers=1, seed=seed)
            sizes = []
            try:
                executor.begin_job(_context(2))
                for demand in (8, 8, 8, 1, 1, 6):
                    executor.rebalance(demand, queue_fraction=None)
                    sizes.append(len(executor._workers))
            finally:
                executor.close()
            return sizes

        first = run_decisions(7)
        assert first == run_decisions(7)
        assert all(1 <= size <= 8 for size in first)
        # The fallback converges on demand, never overshoots it.
        assert first[-1] <= 6

    def test_engine_records_scaling_decisions(self):
        recorder = TraceRecorder()
        with MapReduceEngine(
            nodes=NODES,
            policy=ExecutionPolicy.elastic(max_workers=4, min_workers=1),
            recorder=recorder,
        ) as engine:
            result = engine.run(wordcount_job(), make_splits(LINES))
        assert result.all_outputs() == clean_outputs()
        # 4 maps -> 2 reduces: the controller must have decided once.
        events = result.history.events_of("pool_scaled")
        assert events, "no pool_scaled event recorded"
        assert events[0]["next_tasks"] == 2
        counters = recorder.metrics.as_dict()["counters"]
        assert counters.get("pool.scale.decisions", 0) >= 1


class TestPreemption:
    def run_preempted(self, events, *, policy_kwargs=None, job=None,
                      splits=None, nodes=NODES):
        plan = FaultPlan(events=tuple(events))
        kwargs = dict(
            executor="pool", max_workers=2, fault_plan=plan,
        )
        kwargs.update(policy_kwargs or {})
        recorder = TraceRecorder()
        with MapReduceEngine(
            nodes=nodes, policy=ExecutionPolicy(**kwargs),
            recorder=recorder,
        ) as engine:
            result = engine.run(
                job or wordcount_job(),
                splits if splits is not None else make_splits(LINES),
            )
            executor = engine._executor
            respawned = executor.workers_respawned
            preemptions = executor.preemptions
        return engine, result, recorder, respawned, preemptions

    def test_preempted_map_task_is_absorbed(self):
        engine, result, recorder, respawned, preemptions = \
            self.run_preempted([PreemptWorker("wc", wave="map", task=0)])
        assert result.all_outputs() == clean_outputs()
        assert preemptions == 1
        assert respawned >= 1
        assert result.counters.get(C.WORKER_CRASHES) == 1
        assert result.counters.get(C.BACKUP_ATTEMPTS) == 1
        [event] = result.history.events_of("worker_preempted")
        assert event["task"] == "wc-m-00000"
        assert event["wave"] == "map"
        [backup] = result.history.backup_tasks()
        assert backup.task_id == "wc-m-00000-backup-e1"
        assert result.history.summary()["backups"] == 1
        counters = recorder.metrics.as_dict()["counters"]
        assert counters.get("chaos.preempt_worker") == 1
        assert counters.get("pool.preemptions") == 1
        assert counters.get("pool.workers_respawned", 0) >= 1

    def test_preempted_reduce_task_is_absorbed(self):
        engine, result, recorder, respawned, preemptions = \
            self.run_preempted(
                [PreemptWorker("wc", wave="reduce", task=1)]
            )
        assert result.all_outputs() == clean_outputs()
        assert preemptions == 1
        [event] = result.history.events_of("worker_preempted")
        assert event["task"] == "wc-r-00001"
        assert event["wave"] == "reduce"

    def test_preemption_under_elastic_executor(self):
        engine, result, recorder, respawned, preemptions = \
            self.run_preempted(
                [PreemptWorker("wc", wave="map", task=1)],
                policy_kwargs={
                    "executor": "elastic", "max_workers": 3,
                    "min_workers": 1,
                },
            )
        assert result.all_outputs() == clean_outputs()
        assert preemptions == 1
        assert respawned >= 1

    def test_out_of_range_preemption_is_ignored(self):
        engine, result, recorder, respawned, preemptions = \
            self.run_preempted([PreemptWorker("wc", wave="map", task=99)])
        assert result.all_outputs() == clean_outputs()
        assert preemptions == 0
        assert respawned == 0
        assert result.history.events_of("worker_preempted") == []

    def test_twice_preempted_node_is_blacklisted_and_rotated_out(self):
        """Satellite regression: when the pool respawns workers for a
        node that keeps getting preempted, the retry/backup candidate
        rotation must honor the blacklist — the twice-preempted node
        is not chosen again."""
        splits = [
            InputSplit(f"s{i}", LINES[i], preferred_node="node01")
            for i in range(len(LINES))
        ]
        engine, result, recorder, respawned, preemptions = \
            self.run_preempted(
                [
                    PreemptWorker("wc", wave="map", task=0),
                    PreemptWorker("wc", wave="map", task=1),
                ],
                policy_kwargs={"blacklist_after": 2},
                splits=splits,
            )
        assert result.all_outputs() == clean_outputs()
        assert preemptions == 2
        assert engine.blacklisted_nodes == {"node01"}
        [event] = result.history.events_of("node_blacklisted")
        assert event["node"] == "node01"
        # Both preempted tasks got fenced backups; the backup launched
        # after the blacklist tripped must have rotated off node01.
        backups = result.history.backup_tasks()
        assert len(backups) == 2
        rotated = result.history.find("wc-m-00001-backup-e1")
        assert rotated.node != "node01"


class TestColdStart:
    def test_cold_start_is_charged_and_slept_through_the_hook(self):
        sleeps = []
        plan = FaultPlan(events=(ColdStart(0.25, job="wc"),))
        recorder = TraceRecorder()
        with MapReduceEngine(
            nodes=NODES,
            policy=ExecutionPolicy(
                executor="pool", max_workers=2, fault_plan=plan,
                sleep=sleeps.append,
            ),
            recorder=recorder,
        ) as engine:
            result = engine.run(wordcount_job(), make_splits(LINES))
        assert result.all_outputs() == clean_outputs()
        assert sleeps == [0.25, 0.25]  # one charge per forked worker
        [armed] = result.history.events_of("cold_start_armed")
        assert armed["seconds_per_fork"] == 0.25
        counters = recorder.metrics.as_dict()["counters"]
        assert counters.get("pool.cold_starts") == 2
        assert counters.get("pool.cold_start_seconds") == \
            pytest.approx(0.5)

    def test_cold_start_for_other_job_does_not_fire(self):
        sleeps = []
        plan = FaultPlan(events=(ColdStart(0.25, job="other-job"),))
        with MapReduceEngine(
            nodes=NODES,
            policy=ExecutionPolicy(
                executor="pool", max_workers=2, fault_plan=plan,
                sleep=sleeps.append,
            ),
        ) as engine:
            result = engine.run(wordcount_job(), make_splits(LINES))
        assert result.all_outputs() == clean_outputs()
        assert sleeps == []

    def test_jobless_cold_start_applies_to_every_job(self):
        plan = FaultPlan(events=(ColdStart(0.1),))
        assert plan.cold_start_for("anything") == pytest.approx(0.1)
        assert plan.cold_start_for("wc") == pytest.approx(0.1)


#: Every (job, wave) a preemption can target in the default five-round
#: pipeline: map waves of all five rounds, reduce waves of the three
#: map+reduce rounds.
PIPELINE_WAVES = [
    ("round1-alignment", "map"),
    ("round2-cleaning", "map"),
    ("round2-cleaning", "reduce"),
    ("round3-markdup-opt", "map"),
    ("round3-markdup-opt", "reduce"),
    ("round4-sort", "map"),
    ("round4-sort", "reduce"),
    ("round5-haplotypecaller", "map"),
]


class TestPipelinePreemptionProperty:
    """Property: preempting a worker at ANY wave of ANY round of the
    five-round pipeline yields byte-identical variants."""

    @pytest.fixture(scope="class")
    def clean_variants(self, reference, ref_index, pairs):
        result = GesallPipeline(
            reference, index=ref_index, num_fastq_partitions=4,
            num_reducers=3, policy=ExecutionPolicy.serial(),
        ).run(pairs)
        return [v.to_line() for v in result.variants]

    @pytest.mark.parametrize("job,wave", PIPELINE_WAVES)
    def test_preemption_anywhere_is_byte_identical(
        self, reference, ref_index, pairs, clean_variants, job, wave
    ):
        plan = FaultPlan(events=(PreemptWorker(job, wave=wave, task=0),))
        result = GesallPipeline(
            reference, index=ref_index, num_fastq_partitions=4,
            num_reducers=3,
            policy=ExecutionPolicy(
                executor="pool", max_workers=2, fault_plan=plan,
            ),
        ).run(pairs)
        assert [v.to_line() for v in result.variants] == clean_variants
        preempted = [
            event
            for job_result in result.rounds.results.values()
            for event in job_result.history.events_of("worker_preempted")
        ]
        assert len(preempted) == 1
        assert preempted[0]["wave"] == wave
