"""Unit tests for SAM flags, records and headers."""

import pytest

from repro.errors import FormatError
from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import (
    SamHeader,
    SamRecord,
    decode_quals,
    encode_quals,
    read_sam,
    write_sam,
)


class TestFlags:
    def test_bits_roundtrip(self):
        flags = F.SamFlags(F.PAIRED | F.REVERSE | F.DUPLICATE)
        assert flags.is_paired
        assert flags.is_reverse
        assert flags.is_duplicate
        assert not flags.is_unmapped

    def test_with_bit_set_and_clear(self):
        flags = F.SamFlags(0)
        flags = flags.with_bit(F.DUPLICATE, True)
        assert flags.is_duplicate
        flags = flags.with_bit(F.DUPLICATE, False)
        assert not flags.is_duplicate

    def test_primary_excludes_secondary_and_supplementary(self):
        assert F.SamFlags(0).is_primary
        assert not F.SamFlags(F.SECONDARY).is_primary
        assert not F.SamFlags(F.SUPPLEMENTARY).is_primary

    def test_unknown_bits_masked(self):
        assert int(F.SamFlags(0x10000)) == 0

    def test_equality(self):
        assert F.SamFlags(5) == F.SamFlags(5)
        assert F.SamFlags(5) != F.SamFlags(4)


class TestQualityEncoding:
    def test_roundtrip(self):
        quals = [0, 10, 20, 40, 41]
        assert decode_quals(encode_quals(quals)) == quals

    def test_star_decodes_empty(self):
        assert decode_quals("*") == []

    def test_cap_at_93(self):
        assert decode_quals(encode_quals([200])) == [93]


def make_record(**overrides):
    defaults = dict(
        qname="read1",
        flags=F.SamFlags(F.PAIRED | F.FIRST_IN_PAIR),
        rname="chr1",
        pos=100,
        mapq=60,
        cigar=Cigar.parse("10M"),
        rnext="=",
        pnext=300,
        tlen=210,
        seq="ACGTACGTAC",
        qual=encode_quals([30] * 10),
        tags={"RG": "RG1"},
    )
    defaults.update(overrides)
    return SamRecord(**defaults)


class TestSamRecord:
    def test_line_roundtrip(self):
        record = make_record()
        assert SamRecord.from_line(record.to_line()) == record

    def test_from_line_rejects_short(self):
        with pytest.raises(FormatError):
            SamRecord.from_line("a\tb\tc")

    def test_malformed_tag_rejected(self):
        line = make_record().to_line() + "\tbadtag"
        with pytest.raises(FormatError):
            SamRecord.from_line(line)

    def test_reference_end(self):
        assert make_record().reference_end == 109

    def test_unclipped_five_prime_forward(self):
        record = make_record(cigar=Cigar.parse("2S8M"), seq="ACGTACGTAC")
        assert record.unclipped_five_prime == 98

    def test_unclipped_five_prime_reverse(self):
        record = make_record(
            flags=F.SamFlags(F.PAIRED | F.REVERSE),
            cigar=Cigar.parse("8M2S"),
        )
        assert record.unclipped_five_prime == 100 + 7 + 2

    def test_sum_of_base_qualities_threshold(self):
        record = make_record(qual=encode_quals([10, 20, 30, 30, 5, 15, 15, 15, 15, 15]))
        assert record.sum_of_base_qualities(minimum=15) == 20 + 30 + 30 + 15 * 5

    def test_set_duplicate(self):
        record = make_record()
        record.set_duplicate(True)
        assert record.flags.is_duplicate
        record.set_duplicate(False)
        assert not record.flags.is_duplicate

    def test_copy_is_deep_for_tags(self):
        record = make_record()
        dup = record.copy()
        dup.tags["RG"] = "other"
        assert record.tags["RG"] == "RG1"

    def test_tags_serialized_sorted(self):
        record = make_record(tags={"ZB": "2", "AA": "1"})
        line = record.to_line()
        assert line.index("AA:Z:1") < line.index("ZB:Z:2")


class TestSamHeader:
    def test_text_roundtrip(self):
        header = SamHeader(
            sequences=[("chr1", 9000), ("chr2", 7000)],
            sort_order="coordinate",
        )
        header.add_read_group(ID="RG1", SM="S1")
        header.add_program(ID="bwa", VN="1.0")
        parsed = SamHeader.from_text(header.to_text())
        assert parsed == header

    def test_sequence_lookup(self):
        header = SamHeader(sequences=[("chr1", 9000), ("chr2", 7000)])
        assert header.sequence_length("chr2") == 7000
        assert header.sequence_index("chr2") == 1

    def test_unknown_sequence_raises(self):
        header = SamHeader(sequences=[("chr1", 9000)])
        with pytest.raises(FormatError):
            header.sequence_length("chrZ")

    def test_read_group_requires_id(self):
        header = SamHeader()
        with pytest.raises(FormatError):
            header.add_read_group(SM="S1")

    def test_copy_independent(self):
        header = SamHeader(sequences=[("chr1", 10)])
        dup = header.copy()
        dup.sequences.append(("chr2", 20))
        assert len(header.sequences) == 1


class TestSamFileIO:
    def test_file_roundtrip(self, tmp_path):
        header = SamHeader(sequences=[("chr1", 9000)])
        records = [make_record(qname=f"r{i}") for i in range(5)]
        path = str(tmp_path / "test.sam")
        write_sam(path, header, records)
        got_header, got_records = read_sam(path)
        assert got_header == header
        assert got_records == records
