"""Exactly-once commit tests: fencing, leases, the job WAL, zombie
backups, duplicated commits, and driver-kill crash recovery.

The guarantee under test is the engine's exactly-once contract: every
task's side effects are applied once — never zero times, never twice —
under zombie attempts, duplicated commit messages, and a driver that
dies mid-round, with outputs byte-identical to a clean run throughout.
"""

import os

import pytest

from repro.chaos import (
    DelayTask,
    DuplicateCommit,
    FaultPlan,
    KillDriver,
    ZombieAttempt,
)
from repro.chaos.plan import parse_event
from repro.errors import CommitError, DriverKilledError, MapReduceError
from repro.hdfs.filesystem import Hdfs
from repro.mapreduce import counters as C
from repro.mapreduce.commit import LeaseMonitor, OutputCommitter, RoundJournal
from repro.mapreduce.engine import JobResult, MapReduceEngine, _TaskOutcome
from repro.mapreduce.executors import fork_available
from repro.mapreduce.job import JobConf, make_splits
from repro.mapreduce.policy import ExecutionPolicy
from repro.obs.recorder import ObsConfig
from repro.pipeline.checkpoint import LocalDirectoryBackend
from repro.pipeline.parallel import GesallPipeline
from repro.pipeline.wal import JobWal

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

ALL_EXECUTORS = [
    ("serial", 1),
    ("thread", 4),
    pytest.param("process", 2, marks=needs_fork),
    pytest.param("pool", 2, marks=needs_fork),
]

NODES = [f"node{i:02d}" for i in range(4)]


def wordcount_job(name="wc"):
    def mapper(line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def reducer(word, counts, ctx):
        ctx.emit(word, sum(counts))

    return JobConf(name, mapper, reducer, num_reducers=2)


LINES = [
    "the quick brown fox",
    "jumps over the lazy dog",
    "the dog barks",
    "quick quick slow",
]

#: 4 splits -> 4 map tasks, plus 2 reducers.
ALL_TASK_IDS = [f"wc-m-{i:05d}" for i in range(4)] + [
    f"wc-r-{i:05d}" for i in range(2)
]


def outcome(**attrs):
    out = _TaskOutcome()
    for key, value in attrs.items():
        setattr(out, key, value)
    return out


class FakeFs:
    def __init__(self):
        self.puts = []

    def put(self, path, data, logical_partition=False):
        self.puts.append((path, data, logical_partition))


def clean_outputs(kind="serial", max_workers=1):
    policy = ExecutionPolicy(executor=kind, max_workers=max_workers)
    return MapReduceEngine(nodes=["n1", "n2"], policy=policy).run(
        wordcount_job(), make_splits(LINES)
    ).all_outputs()


# ---------------------------------------------------------------------------
# OutputCommitter unit tests
# ---------------------------------------------------------------------------


class TestOutputCommitter:
    def committer(self, filesystem=None):
        result = JobResult("t")
        return OutputCommitter(result, filesystem), result

    def test_promotes_exactly_once(self):
        committer, result = self.committer()
        out = outcome(attachments=[("table", b"blob")])
        committer.stage("t-m-00000", 0, out)
        assert committer.promote("t-m-00000", 0, out)
        assert result.attachments == {"table": [b"blob"]}
        assert committer.committed == {"t-m-00000": 0}
        assert result.counters.get(C.TASK_COMMITS) == 1
        # A duplicated commit of the same attempt is refused, not applied.
        committer.stage("t-m-00000", 0, out)
        assert not committer.promote("t-m-00000", 0, out)
        assert result.attachments == {"table": [b"blob"]}
        assert result.counters.get(C.FENCED_COMMITS) == 1
        events = result.history.events_of("commit_fenced")
        assert len(events) == 1
        assert events[0]["reason"] == "duplicate"

    def test_stale_epoch_is_fenced(self):
        committer, result = self.committer()
        zombie = outcome(attachments=[("table", b"stale")])
        committer.stage("t-m-00000", 0, zombie)
        assert committer.fence("t-m-00000") == 1
        backup = outcome(attachments=[("table", b"fresh")])
        committer.stage("t-m-00000", 1, backup)
        assert committer.promote("t-m-00000", 1, backup)
        # The zombie's late commit presents the spent epoch-0 token.
        assert not committer.promote("t-m-00000", 0, zombie)
        assert result.attachments == {"table": [b"fresh"]}
        [refused] = result.history.events_of("commit_fenced")
        assert refused["reason"] == "duplicate"  # backup already won

    def test_fence_before_any_commit_refuses_the_old_lineage(self):
        committer, result = self.committer()
        zombie = outcome()
        committer.stage("t-m-00000", 0, zombie)
        committer.fence("t-m-00000")
        assert not committer.promote("t-m-00000", 0, zombie)
        [refused] = result.history.events_of("commit_fenced")
        assert refused["reason"] == "stale_epoch"
        assert refused["expected"] == 1

    def test_unstaged_promotion_raises(self):
        committer, _ = self.committer()
        with pytest.raises(CommitError, match="never staged"):
            committer.promote("t-m-00000", 0, outcome())

    def test_file_writes_go_through_the_filesystem(self):
        fs = FakeFs()
        committer, _ = self.committer(filesystem=fs)
        out = outcome(file_writes=[("/out/p0", b"data", True)])
        committer.stage("t-m-00000", 0, out)
        assert committer.promote("t-m-00000", 0, out)
        assert fs.puts == [("/out/p0", b"data", True)]

    def test_file_write_without_filesystem_raises(self):
        committer, _ = self.committer(filesystem=None)
        out = outcome(file_writes=[("/out/p0", b"data", False)])
        committer.stage("t-m-00000", 0, out)
        with pytest.raises(MapReduceError, match="no filesystem"):
            committer.promote("t-m-00000", 0, out)

    def test_replay_reapplies_a_journaled_commit(self):
        committer, result = self.committer()
        committer.replay("t-m-00000", 1, outcome(attachments=[("t", 1)]))
        assert committer.committed == {"t-m-00000": 1}
        assert result.attachments == {"t": [1]}
        assert result.counters.get(C.WAL_TASKS_SKIPPED) == 1
        assert len(result.history.events_of("task_replayed")) == 1

    def test_replay_of_a_committed_task_raises(self):
        committer, _ = self.committer()
        out = outcome()
        committer.stage("t-m-00000", 0, out)
        committer.promote("t-m-00000", 0, out)
        with pytest.raises(CommitError, match="refused on replay"):
            committer.replay("t-m-00000", 0, out)


# ---------------------------------------------------------------------------
# LeaseMonitor unit tests
# ---------------------------------------------------------------------------


class TestLeaseMonitor:
    def test_no_lease_configured_never_expires(self):
        monitor = LeaseMonitor(ExecutionPolicy())
        assert monitor.verdict(
            outcome(lease_charged=1e9, heartbeats=[])
        ) is None

    def test_zombie_flag_wins_over_heartbeats(self):
        monitor = LeaseMonitor(ExecutionPolicy(lease_seconds=100.0))
        out = outcome(lease_charged=1.0, heartbeats=[0.5], zombie=True)
        assert monitor.verdict(out) == "zombie"

    def test_heartbeat_gap_expires_the_lease(self):
        monitor = LeaseMonitor(ExecutionPolicy(lease_seconds=5.0))
        assert monitor.verdict(
            outcome(lease_charged=12.0, heartbeats=[2.0, 6.0, 10.0])
        ) is None  # max gap 4s: held
        assert monitor.verdict(
            outcome(lease_charged=12.0, heartbeats=[2.0])
        ) == "heartbeat_gap"  # silent from 2s to 12s

    def test_max_silence_ignores_out_of_range_stamps(self):
        out = outcome(
            lease_charged=10.0, heartbeats=[-3.0, 2.0, 6.0, 99.0]
        )
        assert LeaseMonitor.max_silence(out) == 4.0

    def test_clock_is_injectable(self):
        monitor = LeaseMonitor(ExecutionPolicy(), clock=lambda: 42.0)
        assert monitor.clock() == 42.0


# ---------------------------------------------------------------------------
# JobWal unit tests
# ---------------------------------------------------------------------------


class TestJobWal:
    def wal(self, tmp_path, fingerprint="fp"):
        return JobWal(LocalDirectoryBackend(str(tmp_path)), fingerprint)

    def test_roundtrip(self, tmp_path):
        wal = self.wal(tmp_path)
        wal.begin_round("round1")
        wal.append_commit("round1", "t-m-00000", 0, {"n": 1})
        wal.append_commit("round1", "t-m-00001", 2, {"n": 2})
        recovered = wal.recover_round("round1")
        assert recovered == {
            "t-m-00000": (0, {"n": 1}),
            "t-m-00001": (2, {"n": 2}),
        }

    def test_missing_or_blank_log_recovers_nothing(self, tmp_path):
        wal = self.wal(tmp_path)
        assert wal.recover_round("round1") == {}
        wal.begin_round("round1")
        wal.reset_round("round1")
        assert wal.recover_round("round1") == {}

    def test_header_only_log_recovers_nothing(self, tmp_path):
        wal = self.wal(tmp_path)
        wal.begin_round("round1")
        assert wal.recover_round("round1") == {}

    def test_foreign_fingerprint_is_ignored(self, tmp_path):
        wal = self.wal(tmp_path)
        wal.begin_round("round1")
        wal.append_commit("round1", "t-m-00000", 0, {"n": 1})
        other = self.wal(tmp_path, fingerprint="other-run")
        assert other.recover_round("round1") == {}

    def test_torn_tail_keeps_the_completed_prefix(self, tmp_path):
        wal = self.wal(tmp_path)
        wal.begin_round("round1")
        wal.append_commit("round1", "t-m-00000", 0, {"n": 1})
        log = tmp_path / "wal-round1.log"
        intact = log.read_bytes()
        wal.append_commit("round1", "t-m-00001", 0, {"n": 2})
        full = log.read_bytes()
        # A crash tore the second commit's frame mid-write.
        log.write_bytes(full[: len(intact) + (len(full) - len(intact)) // 2])
        assert wal.recover_round("round1") == {"t-m-00000": (0, {"n": 1})}

    def test_corrupt_frame_stops_recovery(self, tmp_path):
        wal = self.wal(tmp_path)
        wal.begin_round("round1")
        wal.append_commit("round1", "t-m-00000", 0, {"n": 1})
        wal.append_commit("round1", "t-m-00001", 0, {"n": 2})
        log = tmp_path / "wal-round1.log"
        blob = bytearray(log.read_bytes())
        blob[-1] ^= 0xFF  # rot the last commit's payload
        log.write_bytes(bytes(blob))
        assert wal.recover_round("round1") == {"t-m-00000": (0, {"n": 1})}


# ---------------------------------------------------------------------------
# Zombie attempts, fenced backups, duplicated commits (engine level)
# ---------------------------------------------------------------------------


class TestZombieFencing:
    def run_with_plan(self, plan, kind="serial", max_workers=1, **knobs):
        policy = ExecutionPolicy(
            executor=kind, max_workers=max_workers, fault_plan=plan,
            retry_backoff=0.0, sleep=lambda _s: None, **knobs,
        )
        engine = MapReduceEngine(nodes=["n1", "n2"], policy=policy)
        return engine, engine.run(wordcount_job(), make_splits(LINES))

    @pytest.mark.parametrize("kind,max_workers", ALL_EXECUTORS)
    def test_zombie_is_fenced_and_backup_commits(self, kind, max_workers):
        plan = FaultPlan(events=(ZombieAttempt("wc-m-00000", attempt=1),))
        _, result = self.run_with_plan(plan, kind, max_workers)
        assert result.all_outputs() == clean_outputs()
        assert result.counters.get(C.TASK_COMMITS) == len(ALL_TASK_IDS)
        assert result.counters.get(C.FENCED_COMMITS) == 1
        assert result.counters.get(C.LEASE_EXPIRATIONS) == 1
        assert result.counters.get(C.BACKUP_ATTEMPTS) == 1

    def test_backup_shows_up_in_history(self):
        plan = FaultPlan(events=(ZombieAttempt("wc-r-00001", attempt=1),))
        _, result = self.run_with_plan(plan)
        [backup] = result.history.backup_tasks()
        assert backup.task_id == "wc-r-00001-backup-e1"
        assert backup.backup
        summary = result.history.summary()
        assert summary["backups"] == 1
        assert summary["fenced_commits"] == 1
        [expired] = result.history.events_of("lease_expired")
        assert expired["task"] == "wc-r-00001"
        assert expired["reason"] == "zombie"
        [launched] = result.history.events_of("backup_launched")
        assert launched["epoch"] == 1

    def test_lease_loss_charges_the_node_toward_the_blacklist(self):
        plan = FaultPlan(events=(ZombieAttempt("wc-m-00000", attempt=1),))
        engine, result = self.run_with_plan(plan, blacklist_after=1)
        [expired] = result.history.events_of("lease_expired")
        assert expired["node"] in engine.blacklisted_nodes

    def test_heartbeat_silence_expires_a_real_lease(self):
        # A 60s injected delay with no heartbeats is 60s of silence;
        # the 30s lease expires and a fenced backup (epoch 1 sees no
        # chaos events, so it runs clean) takes the commit.
        plan = FaultPlan(events=(
            DelayTask("wc-m-00001", seconds=60.0, attempt=1),
        ))
        _, result = self.run_with_plan(plan, lease_seconds=30.0)
        assert result.all_outputs() == clean_outputs()
        assert result.counters.get(C.LEASE_EXPIRATIONS) == 1
        [expired] = result.history.events_of("lease_expired")
        assert expired["reason"] == "heartbeat_gap"

    def test_exhausted_backups_fail_the_job(self):
        # A lease shorter than any measurable runtime expires every
        # lineage, backups included.
        plan = FaultPlan(events=(ZombieAttempt("wc-m-00000", attempt=1),))
        with pytest.raises(MapReduceError, match="lost its lease"):
            self.run_with_plan(plan, lease_seconds=1e-12, backup_attempts=2)

    @needs_fork
    def test_killed_pool_worker_is_fenced_and_backup_commits(self, tmp_path):
        """A pool worker dying mid-task settles through the fenced
        backup path: the dead attempt never presents a commit, the
        backup's epoch-1 commit wins, outputs stay byte-identical."""
        marker = tmp_path / "crashed-once"

        def mapper(line, ctx):
            if line.startswith("the quick") and not marker.exists():
                marker.write_text("dying")
                os._exit(9)
            for word in line.split():
                ctx.emit(word, 1)

        def reducer(word, counts, ctx):
            ctx.emit(word, sum(counts))

        job = JobConf("wc", mapper, reducer, num_reducers=2)
        with MapReduceEngine(
            nodes=NODES, policy=ExecutionPolicy.pooled(max_workers=2)
        ) as engine:
            result = engine.run(job, make_splits(LINES))
            executor = engine._executor
            assert executor.workers_respawned == 1
        assert result.all_outputs() == clean_outputs()
        assert result.counters.get(C.WORKER_CRASHES) == 1
        assert result.counters.get(C.BACKUP_ATTEMPTS) == 1
        assert result.counters.get(C.TASK_COMMITS) == len(ALL_TASK_IDS)
        # A crash is not a lease loss: the attempt died, it never went
        # silent, so no lease expiration is charged.
        assert C.LEASE_EXPIRATIONS not in result.counters
        [crashed] = result.history.events_of("worker_crashed")
        assert crashed["task"] == "wc-m-00000"
        assert crashed["exitcode"] == 9
        [backup] = result.history.backup_tasks()
        assert backup.task_id == "wc-m-00000-backup-e1"

    def test_duplicate_commit_is_refused(self):
        plan = FaultPlan(events=(DuplicateCommit("wc-r-00000"),))
        _, result = self.run_with_plan(plan)
        assert result.all_outputs() == clean_outputs()
        assert result.counters.get(C.FENCED_COMMITS) == 1
        [refused] = result.history.events_of("commit_fenced")
        assert refused["task"] == "wc-r-00000"
        assert refused["reason"] == "duplicate"

    @pytest.mark.parametrize("kind,max_workers", ALL_EXECUTORS)
    @pytest.mark.parametrize("task_id", ALL_TASK_IDS)
    def test_any_lease_expiry_is_byte_identical(
        self, kind, max_workers, task_id
    ):
        """S3 property: expiring any one attempt's lease at any task
        index, under every executor, changes nothing — outputs stay
        byte-identical and exactly one attempt commits per task."""
        plan = FaultPlan(events=(ZombieAttempt(task_id, attempt=1),))
        _, result = self.run_with_plan(plan, kind, max_workers)
        assert result.all_outputs() == clean_outputs()
        assert result.counters.get(C.TASK_COMMITS) == len(ALL_TASK_IDS)
        assert result.counters.get(C.FENCED_COMMITS) == 1
        assert result.counters.get(C.BACKUP_ATTEMPTS) == 1


# ---------------------------------------------------------------------------
# Driver kill + WAL replay (engine level)
# ---------------------------------------------------------------------------


class TestDriverKillReplay:
    def test_interrupted_round_resumes_from_the_wal(self, tmp_path):
        wal = JobWal(LocalDirectoryBackend(str(tmp_path)), "fp")
        plan = FaultPlan(events=(KillDriver("r1", after_commits=3),))
        wal.begin_round("r1")
        journal = RoundJournal(wal, "r1", plan=plan)
        with pytest.raises(DriverKilledError, match="after commit #3"):
            MapReduceEngine(nodes=["n1", "n2"]).run(
                wordcount_job(), make_splits(LINES), journal=journal
            )
        recovered = wal.recover_round("r1")
        assert len(recovered) == 3
        # Resume: recover first, then truncate and replay through the
        # normal commit path (re-journaling as it goes).
        wal.begin_round("r1")
        journal = RoundJournal(wal, "r1", recovered=recovered)
        result = MapReduceEngine(nodes=["n1", "n2"]).run(
            wordcount_job(), make_splits(LINES), journal=journal
        )
        assert result.all_outputs() == clean_outputs()
        assert result.counters.get(C.WAL_TASKS_SKIPPED) == 3
        assert result.counters.get(C.TASK_COMMITS) == len(ALL_TASK_IDS)
        assert len(result.history.events_of("task_replayed")) == 3
        # The finished round's journal is complete again.
        assert len(wal.recover_round("r1")) == len(ALL_TASK_IDS)

    def test_replayed_outcomes_keep_counters_identical(self, tmp_path):
        wal = JobWal(LocalDirectoryBackend(str(tmp_path)), "fp")
        plan = FaultPlan(events=(KillDriver("r1", after_commits=2),))
        wal.begin_round("r1")
        with pytest.raises(DriverKilledError):
            MapReduceEngine(nodes=["n1", "n2"]).run(
                wordcount_job(), make_splits(LINES),
                journal=RoundJournal(wal, "r1", plan=plan),
            )
        recovered = wal.recover_round("r1")
        wal.begin_round("r1")
        resumed = MapReduceEngine(nodes=["n1", "n2"]).run(
            wordcount_job(), make_splits(LINES),
            journal=RoundJournal(wal, "r1", recovered=recovered),
        )
        clean = MapReduceEngine(nodes=["n1", "n2"]).run(
            wordcount_job(), make_splits(LINES)
        )
        for name in (C.MAP_INPUT_RECORDS, C.MAP_OUTPUT_RECORDS,
                     C.REDUCE_INPUT_GROUPS, C.REDUCE_OUTPUT_RECORDS):
            assert resumed.counters.get(name) == clean.counters.get(name)


# ---------------------------------------------------------------------------
# Crash recovery through the pipeline (KillDriver + checkpoint + WAL)
# ---------------------------------------------------------------------------


def build_pipeline(reference, ref_index, **kwargs):
    return GesallPipeline(
        reference, index=ref_index, nodes=NODES,
        num_fastq_partitions=3, num_reducers=2, **kwargs,
    )


def fingerprint_of(result):
    files = {f.path: result.hdfs.get(f.path) for f in result.hdfs.files()}
    return files, [v.to_line() for v in result.variants]


class TestPipelineCrashRecovery:
    def test_kill_driver_then_resume_is_byte_identical(
        self, reference, ref_index, pairs, tmp_path
    ):
        some_pairs = pairs[:160]
        clean = build_pipeline(reference, ref_index).run(some_pairs)
        root = str(tmp_path / "ckpt")
        plan = FaultPlan(events=(KillDriver("round2", after_commits=2),))
        dying = ExecutionPolicy(fault_plan=plan)
        with pytest.raises(DriverKilledError):
            build_pipeline(
                reference, ref_index, checkpoint_dir=root, policy=dying
            ).run(some_pairs)
        resumed = build_pipeline(
            reference, ref_index, checkpoint_dir=root,
            obs=ObsConfig(enabled=True),
        ).run(some_pairs, resume=True)
        # Round 1 came from its checkpoint; round 2 was interrupted and
        # replayed its two journaled commits instead of re-running them.
        assert resumed.resumed_rounds == ["round1"]
        assert list(resumed.recovered_tasks) == ["round2"]
        assert len(resumed.recovered_tasks["round2"]) == 2
        assert fingerprint_of(resumed) == fingerprint_of(clean)
        round2 = resumed.rounds.results["round2"]
        assert round2.counters.get(C.WAL_TASKS_SKIPPED) == 2
        assert len(round2.history.events_of("task_replayed")) == 2
        metrics = resumed.recorder.metrics
        assert metrics.counter("wal.rounds_recovered").value == 1
        assert metrics.counter("wal.tasks_skipped").value == 2

    def test_fresh_run_resets_stale_wals(
        self, reference, ref_index, pairs, tmp_path
    ):
        some_pairs = pairs[:160]
        root = str(tmp_path / "ckpt")
        plan = FaultPlan(events=(KillDriver("round2", after_commits=1),))
        with pytest.raises(DriverKilledError):
            build_pipeline(
                reference, ref_index, checkpoint_dir=root,
                policy=ExecutionPolicy(fault_plan=plan),
            ).run(some_pairs)
        # A non-resume run must not replay the dead run's journal.
        fresh = build_pipeline(
            reference, ref_index, checkpoint_dir=root
        ).run(some_pairs)
        assert fresh.recovered_tasks == {}
        assert fingerprint_of(fresh) == fingerprint_of(
            build_pipeline(reference, ref_index).run(some_pairs)
        )


# ---------------------------------------------------------------------------
# Satellite regressions: segment leak (S1) and audited speculation (S2)
# ---------------------------------------------------------------------------


class TestSegmentLeakRegression:
    def test_failure_between_the_waves_leaks_no_segments(self):
        """A chaos-plan validation error fires after the map wave has
        stored its segments and before any reduce runs; cleanup must
        still cover them (the old try/finally only wrapped the reduce
        wave)."""
        from repro.chaos import CorruptSegment

        hdfs = Hdfs(["n1", "n2"], replication=2)
        plan = FaultPlan(events=(CorruptSegment("wc", map_index=99),))
        policy = ExecutionPolicy(fault_plan=plan)
        engine = MapReduceEngine(
            nodes=["n1", "n2"], policy=policy, filesystem=hdfs
        )
        with pytest.raises(MapReduceError, match="no such segment"):
            engine.run(wordcount_job(), make_splits(LINES))
        assert hdfs.list_dir("/shuffle") == []


class TestAuditedSpeculation:
    def speculated_tasks(self, kind, fault_seed):
        policy = ExecutionPolicy(
            executor=kind, max_workers=4, speculative=True,
            fault_seed=fault_seed,
        )
        result = MapReduceEngine(nodes=["n1", "n2"], policy=policy).run(
            wordcount_job(), make_splits(LINES)
        )
        assert result.all_outputs() == clean_outputs()
        return sorted(
            t.task_id for t in result.history.tasks if t.speculative
        )

    def test_audited_index_is_seeded_not_hardcoded(self):
        """S2: the audited straggler follows the policy seed instead of
        always sparing every task but the last."""
        per_seed = {
            seed: self.speculated_tasks("thread", seed) for seed in range(6)
        }
        assert len({tuple(v) for v in per_seed.values()}) > 1
        # No seed audits the old hard-coded choice exclusively, and the
        # draw is over live tasks in both waves.
        for tasks in per_seed.values():
            assert len(tasks) == 2  # one map, one reduce audit

    @needs_fork
    def test_audit_choice_is_identical_across_executors(self):
        assert (
            self.speculated_tasks("thread", 3)
            == self.speculated_tasks("process", 3)
        )


# ---------------------------------------------------------------------------
# CLI event specs for the new chaos vocabulary
# ---------------------------------------------------------------------------


class TestNewEventSpecs:
    def test_parse_round_trip(self):
        assert parse_event("t-m-00000@2", "zombie") == \
            ZombieAttempt("t-m-00000", attempt=2)
        assert parse_event("t-m-00000", "zombie") == \
            ZombieAttempt("t-m-00000")
        assert parse_event("t-r-00001", "duplicate-commit") == \
            DuplicateCommit("t-r-00001")
        assert parse_event("round2:3", "kill-driver") == \
            KillDriver("round2", after_commits=3)
        assert parse_event("round2", "kill-driver") == KillDriver("round2")

    def test_kill_driver_validation(self):
        with pytest.raises(MapReduceError, match=">= 1"):
            FaultPlan(events=(KillDriver("round2", after_commits=0),))
        with pytest.raises(MapReduceError, match="bad --kill-driver"):
            parse_event("round2:zero", "kill-driver")

    def test_plan_accessors(self):
        plan = FaultPlan(events=(
            ZombieAttempt("t-m-00000", attempt=1),
            DuplicateCommit("t-r-00000"),
            KillDriver("round2", after_commits=2),
        ))
        assert plan.zombie_in("t-m-00000", 1)
        assert not plan.zombie_in("t-m-00000", 2)
        assert plan.duplicate_commit_for("t-r-00000")
        assert not plan.duplicate_commit_for("t-m-00000")
        assert plan.driver_kill("round2").after_commits == 2
        assert plan.driver_kill("round3") is None
        kinds = [e["kind"] for e in plan.as_dicts()]
        assert kinds == ["zombie_attempt", "duplicate_commit", "kill_driver"]
