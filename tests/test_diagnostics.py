"""Tests for the error-diagnosis toolkit (Table 8, Fig 11 analyses)."""

import pytest

from repro.diagnostics.insert_size import (
    edge_enrichment,
    insert_size_histogram,
    population_insert_stats,
)
from repro.diagnostics.regions import (
    attribute_regions,
    discordance_coverage,
    enrichment_in_hard_regions,
    filtered_discordance_fraction,
)
from repro.diagnostics.toolkit import ErrorDiagnosisToolkit
from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import SamRecord, encode_quals
from repro.metrics.accuracy import DiscordantAlignment, compare_alignments
from repro.pipeline.parallel import GesallPipeline
from repro.pipeline.serial import SerialPipeline


def rec(qname, pos, mapq=60, tlen=0, flag_bits=0):
    return SamRecord(
        qname, F.SamFlags(flag_bits | F.PAIRED | F.FIRST_IN_PAIR | F.PROPER_PAIR),
        "chr1", pos, mapq, Cigar.parse("10M"), seq="ACGTACGTAC",
        qual=encode_quals([30] * 10), tlen=tlen,
    )


def discordant(pos_a, pos_b, mapq=60, tlen=0):
    return DiscordantAlignment(
        rec("x", pos_a, mapq, tlen), rec("x", pos_b, mapq, tlen)
    )


@pytest.fixture(scope="module")
def pipeline_pair(reference, ref_index, pairs):
    # A low downsampling cap activates the Haplotype Caller's
    # invocation-seeded nondeterminism, so variant-level discordance
    # (and hence pipeline-unique variants) can be observed.
    from repro.variants.haplotype import HaplotypeCallerConfig
    hc_config = HaplotypeCallerConfig(downsample_depth=10)
    serial = SerialPipeline(reference, index=ref_index, batch_size=500,
                            hc_config=hc_config).run(pairs)
    parallel = GesallPipeline(
        reference, index=ref_index, num_fastq_partitions=5, num_reducers=3,
        hc_config=hc_config,
    ).run(pairs)
    return serial, parallel


class TestRegionAttribution:
    def test_classification(self, reference):
        centromere = next(reference.centromeres.intervals())
        blacklist = next(reference.blacklist.intervals())
        discordants = [
            discordant(centromere.start + 5, centromere.start + 9),
            discordant(blacklist.start + 5, blacklist.start + 9),
            discordant(10, 20),
        ]
        attribution = attribute_regions(discordants, reference)
        assert attribution.in_centromere == 1
        assert attribution.in_blacklist == 1
        assert attribution.elsewhere == 1
        assert attribution.hard_region_fraction == pytest.approx(2 / 3)

    def test_coverage_bins(self, reference):
        discordants = [discordant(100, 100), discordant(120, 130)]
        coverage = discordance_coverage(discordants, reference, bin_size=500)
        assert coverage["chr1"][0] == 4  # both reads of both discordants

    def test_filtered_fraction_drops_hard_and_low_mapq(self, reference):
        centromere = next(reference.centromeres.intervals())
        clean_pos = next(
            pos for pos in range(1, reference.contig_length("chr1"))
            if not reference.in_hard_region("chr1", pos)
            and not reference.in_hard_region("chr1", pos + 10)
        )
        discordants = [
            discordant(centromere.start + 1, centromere.start + 2, mapq=60),
            discordant(clean_pos, clean_pos + 10, mapq=5),
            discordant(clean_pos, clean_pos + 10, mapq=60),
        ]
        fraction = filtered_discordance_fraction(
            discordants, reference, total_reads=100
        )
        assert fraction == pytest.approx(0.01)  # only the third survives


class TestInsertSizeAnalysis:
    def test_histogram(self):
        discordants = [discordant(1, 2, tlen=310), discordant(3, 4, tlen=-305)]
        histogram = insert_size_histogram(discordants, bin_width=20)
        assert histogram == {300: 2}

    def test_population_stats(self):
        population = [rec(f"r{i}", 1, tlen=300 + (i % 5)) for i in range(50)]
        mean, sd = population_insert_stats(population)
        assert 300 <= mean <= 305
        assert sd > 0

    def test_edge_enrichment_ordering(self):
        population = [rec(f"r{i}", 1, tlen=300) for i in range(100)]
        population += [rec(f"e{i}", 1, tlen=300 + i) for i in range(1, 30)]
        discordants = [discordant(1, 2, tlen=400), discordant(3, 4, tlen=395)]
        disc_edge, pop_edge = edge_enrichment(discordants, population)
        assert disc_edge >= pop_edge


class TestToolkitOnRealPipelines:
    def test_table8_report(self, reference, pipeline_pair):
        serial, parallel = pipeline_pair
        from repro.variants.haplotype import HaplotypeCallerConfig
        toolkit = ErrorDiagnosisToolkit(
            reference, HaplotypeCallerConfig(downsample_depth=10)
        )
        report = toolkit.diagnose(serial, parallel)
        stages = [row.stage for row in report.rows]
        assert stages == ["Bwa", "Mark Duplicates", "Haplotype Caller"]
        assert report.row("Bwa").d_count > 0
        assert report.row("Bwa").d_impact is not None
        assert report.quality_rows[0].label == "Intersection"

    def test_discordance_concentrates_in_hard_regions(self, reference,
                                                      pipeline_pair):
        """Fig 11a: disagreeing reads gather around centromeres and
        blacklisted regions."""
        serial, parallel = pipeline_pair
        comparison = compare_alignments(serial.alignment, parallel.alignment)
        if comparison.d_count < 5:
            pytest.skip("too few discordants on this seed to test enrichment")
        enrichment = enrichment_in_hard_regions(
            comparison.discordant, reference
        )
        assert enrichment > 1.5

    def test_most_discordants_low_mapq(self, reference, pipeline_pair):
        """Fig 11b: the majority of disagreeing reads have low MAPQ."""
        serial, parallel = pipeline_pair
        comparison = compare_alignments(serial.alignment, parallel.alignment)
        toolkit = ErrorDiagnosisToolkit(reference)
        assert toolkit.low_quality_fraction(comparison) > 0.5
        joint = toolkit.mapq_joint_distribution(comparison)
        assert len(joint) == comparison.d_count

    def test_markdup_dcount_exceeds_net_difference(self, pipeline_pair):
        """Paper: the MarkDuplicates D_count is inflated by tie
        flapping; the net duplicate-count difference is tiny."""
        serial, parallel = pipeline_pair
        from repro.metrics.accuracy import compare_duplicates
        comparison = compare_duplicates(serial.deduped, parallel.deduped)
        assert comparison.count_difference <= comparison.flag_differences

    def test_concordant_variants_higher_quality(self, reference,
                                                pipeline_pair):
        """Tables 9/10: pipeline-unique variants are lower quality than
        the concordant set."""
        serial, parallel = pipeline_pair
        from repro.variants.haplotype import HaplotypeCallerConfig
        toolkit = ErrorDiagnosisToolkit(
            reference, HaplotypeCallerConfig(downsample_depth=10)
        )
        report = toolkit.diagnose(serial, parallel)
        intersection = report.quality_rows[0]
        unique = report.quality_rows[1:]
        unique_with_calls = [row for row in unique if row.count > 0]
        if not unique_with_calls:
            pytest.skip("no pipeline-unique variants on this seed")
        for row in unique_with_calls:
            assert row.mean_qual <= intersection.mean_qual * 1.05
