"""Unit tests for pileup, genotyper, haplotype caller and annotations."""

import pytest

from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import SamRecord, encode_quals
from repro.genome.reference import ReferenceGenome
from repro.genome.regions import GenomicInterval
from repro.variants.annotations import (
    allele_balance,
    fisher_exact_two_tailed,
    fisher_strand,
    rms_mapping_quality,
)
from repro.variants.genotyper import (
    GenotyperConfig,
    UnifiedGenotyperLite,
    diploid_snp_posteriors,
)
from repro.variants.haplotype import (
    HaplotypeCallerConfig,
    HaplotypeCallerLite,
    activity_score,
    required_overlap,
)
from repro.variants.pileup import (
    PileupConfig,
    build_pileup,
    record_passes,
)

REF = ReferenceGenome({"chr1": "ACGTACGTAC" * 30})


def rec(qname, pos, seq, flag_bits=0, mapq=60, cigar=None, quals=None):
    cigar = cigar or f"{len(seq)}M"
    return SamRecord(
        qname, F.SamFlags(flag_bits), "chr1", pos, mapq, Cigar.parse(cigar),
        seq=seq, qual=encode_quals(quals or [35] * len(seq)),
    )


def reads_with_snp(pos=50, alt="T", n_ref=10, n_alt=10, length=20):
    """Reads covering `pos`; n_alt carry `alt` at that position."""
    reads = []
    start = pos - 5
    ref_seq = REF.fetch("chr1", start, start + length)
    alt_seq = ref_seq[:5] + alt + ref_seq[6:]
    for i in range(n_ref):
        bits = F.REVERSE if i % 2 else 0
        reads.append(rec(f"ref{i}", start, ref_seq, bits))
    for i in range(n_alt):
        bits = F.REVERSE if i % 2 else 0
        reads.append(rec(f"alt{i}", start, alt_seq, bits))
    return reads


class TestPileup:
    def test_depth_and_bases(self):
        reads = reads_with_snp(n_ref=6, n_alt=4)
        columns = {c.pos: c for c in build_pileup(reads, REF)}
        column = columns[50]
        assert column.depth == 10
        counts = column.base_counts()
        assert counts["T"] == 4

    def test_filters_low_mapq(self):
        reads = [rec("a", 10, "ACGTACGTAC", mapq=5)]
        assert list(build_pileup(reads, REF)) == []

    def test_filters_duplicates(self):
        read = rec("a", 10, "ACGTACGTAC")
        read.set_duplicate(True)
        assert list(build_pileup([read], REF)) == []
        config = PileupConfig(include_duplicates=True)
        assert list(build_pileup([read], REF, config=config))

    def test_interval_restriction(self):
        reads = reads_with_snp()
        interval = GenomicInterval("chr1", 48, 52)
        columns = list(build_pileup(reads, REF, interval))
        assert all(48 <= c.pos < 52 for c in columns)

    def test_insertion_detected(self):
        # Read with 2-base insertion after offset 9 (ref pos 10+9=wrong);
        # build: 10M 2I 8M starting at pos 11.
        seq = REF.fetch("chr1", 11, 21) + "TT" + REF.fetch("chr1", 21, 29)
        read = rec("ins", 11, seq, cigar="10M2I8M")
        columns = {c.pos: c for c in build_pileup([read], REF)}
        indels = columns[20].indel_observations()
        assert len(indels) == 1
        (ref_allele, alt_allele), count = next(iter(indels.items()))
        assert count == 1
        assert alt_allele == ref_allele + "TT"

    def test_deletion_detected(self):
        seq = REF.fetch("chr1", 11, 21) + REF.fetch("chr1", 24, 32)
        read = rec("del", 11, seq, cigar="10M3D8M")
        columns = {c.pos: c for c in build_pileup([read], REF)}
        indels = columns[20].indel_observations()
        (ref_allele, alt_allele), _ = next(iter(indels.items()))
        assert len(ref_allele) == 4
        assert alt_allele == ref_allele[0]

    def test_record_passes(self):
        config = PileupConfig()
        assert record_passes(rec("a", 1, "ACGT"), config)
        assert not record_passes(rec("a", 1, "ACGT", flag_bits=F.UNMAPPED), config)
        assert not record_passes(rec("a", 1, "ACGT", flag_bits=F.SECONDARY), config)


class TestAnnotations:
    def test_rms_mapq(self):
        assert rms_mapping_quality([60, 60]) == pytest.approx(60.0)
        assert rms_mapping_quality([]) == 0.0
        assert rms_mapping_quality([30, 50]) == pytest.approx(41.23, abs=0.01)

    def test_allele_balance(self):
        assert allele_balance(10, 10) == 0.5
        assert allele_balance(0, 10) == 1.0
        assert allele_balance(0, 0) == 0.0

    def test_fisher_unbiased(self):
        assert fisher_exact_two_tailed(10, 10, 10, 10) == pytest.approx(1.0, abs=0.05)
        assert fisher_strand(10, 10, 10, 10) < 3.0

    def test_fisher_biased(self):
        # All ALT on one strand, REF balanced: strong bias.
        assert fisher_strand(10, 10, 15, 0) > 10.0

    def test_fisher_empty(self):
        assert fisher_exact_two_tailed(0, 0, 0, 0) == 1.0


class TestGenotyper:
    def test_heterozygous_snp_called(self):
        reads = reads_with_snp(n_ref=12, n_alt=10)
        calls = UnifiedGenotyperLite(REF).call(reads)
        snp = [c for c in calls if c.pos == 50]
        assert len(snp) == 1
        assert snp[0].alt == "T"
        assert snp[0].genotype == "0/1"
        assert snp[0].info["DP"] == 22

    def test_homozygous_snp_called(self):
        reads = reads_with_snp(n_ref=0, n_alt=15)
        calls = UnifiedGenotyperLite(REF).call(reads)
        snp = [c for c in calls if c.pos == 50]
        assert snp and snp[0].genotype == "1/1"

    def test_no_call_on_clean_pileup(self):
        reads = reads_with_snp(n_ref=15, n_alt=0)
        calls = UnifiedGenotyperLite(REF).call(reads)
        assert calls == []

    def test_sequencing_noise_not_called(self):
        # One low-quality alt read among many ref reads.
        reads = reads_with_snp(n_ref=20, n_alt=1)
        calls = UnifiedGenotyperLite(REF).call(reads)
        assert [c for c in calls if c.pos == 50] == []

    def test_min_depth_respected(self):
        reads = reads_with_snp(n_ref=1, n_alt=2)
        config = GenotyperConfig(min_depth=10)
        assert UnifiedGenotyperLite(REF, config).call(reads) == []

    def test_posteriors_sum_to_one(self):
        reads = reads_with_snp(n_ref=5, n_alt=5)
        column = next(
            c for c in build_pileup(reads, REF) if c.pos == 50
        )
        ref_base = REF.base_at("chr1", 50)
        p = diploid_snp_posteriors(column, ref_base, "T", GenotyperConfig())
        assert sum(p) == pytest.approx(1.0)
        assert p[1] > p[0] and p[1] > p[2]  # het most likely at 50/50

    def test_indel_called(self):
        reads = []
        for i in range(8):
            seq = REF.fetch("chr1", 11, 21) + "GG" + REF.fetch("chr1", 21, 29)
            reads.append(rec(f"i{i}", 11, seq, cigar="10M2I8M"))
        for i in range(8):
            reads.append(rec(f"r{i}", 11, REF.fetch("chr1", 11, 31)))
        calls = UnifiedGenotyperLite(REF).call(reads)
        indels = [c for c in calls if c.is_indel]
        assert len(indels) == 1
        assert indels[0].pos == 20
        assert indels[0].alt.endswith("GG")


class TestHaplotypeCaller:
    def test_activity_score(self):
        reads = reads_with_snp(n_ref=10, n_alt=10)
        column = next(c for c in build_pileup(reads, REF) if c.pos == 50)
        ref_base = REF.base_at("chr1", 50)
        assert activity_score(column, ref_base) == pytest.approx(0.5)

    def test_calls_variant_in_active_window(self):
        reads = reads_with_snp(n_ref=10, n_alt=10)
        calls = HaplotypeCallerLite(REF).call(reads)
        assert any(c.pos == 50 and c.alt == "T" for c in calls)

    def test_quiet_genome_no_windows(self):
        reads = reads_with_snp(n_ref=15, n_alt=0)
        caller = HaplotypeCallerLite(REF)
        columns = list(build_pileup(reads, REF))
        assert caller.active_windows(columns) == []

    def test_window_respects_max_length(self):
        config = HaplotypeCallerConfig(max_window=30)
        caller = HaplotypeCallerLite(REF, config)
        reads = []
        # Alt evidence across a long stretch -> windows must split.
        for start in range(11, 150, 4):
            ref_seq = REF.fetch("chr1", start, start + 20)
            alt_seq = "".join(
                ("T" if b == "A" else "A") for b in ref_seq
            )
            reads.append(rec(f"n{start}", start, alt_seq))
            reads.append(rec(f"m{start}", start, ref_seq))
        windows = caller.active_windows(list(build_pileup(reads, REF)))
        assert windows
        assert all(w.length <= config.max_window + 1 for w in windows)

    def test_emit_interval_filters_calls(self):
        reads = reads_with_snp(n_ref=10, n_alt=10)
        caller = HaplotypeCallerLite(REF)
        inside = caller.call(
            reads, emit_interval=GenomicInterval("chr1", 45, 55)
        )
        outside = caller.call(
            reads, emit_interval=GenomicInterval("chr1", 100, 200)
        )
        assert any(c.pos == 50 for c in inside)
        assert not outside

    def test_required_overlap_bound(self):
        config = HaplotypeCallerConfig(max_window=240, trend_window=10)
        assert required_overlap(config) >= 250

    def test_downsampling_triggers_at_high_depth(self):
        config = HaplotypeCallerConfig(downsample_depth=10)
        caller = HaplotypeCallerLite(REF, config)
        reads = reads_with_snp(n_ref=40, n_alt=40)
        kept = caller._downsample(reads, None)
        assert len(kept) < len(reads)

    def test_downsampling_not_triggered_at_low_depth(self):
        caller = HaplotypeCallerLite(REF)
        reads = reads_with_snp(n_ref=5, n_alt=5)
        assert len(caller._downsample(reads, None)) == len(reads)
