"""Unit tests for the genome substrate: regions, reference, simulators."""

import pytest

from repro.errors import ReferenceError_, ReproError
from repro.genome.reference import (
    ReferenceGenome,
    read_fasta,
    reverse_complement,
    write_fasta,
)
from repro.genome.regions import GenomicInterval, RegionSet, tile_contig
from repro.genome.simulate import (
    DonorSimulationConfig,
    ReadSimulationConfig,
    ReferenceSimulationConfig,
    simulate_donor,
    simulate_reads,
    simulate_reference,
)


class TestIntervals:
    def test_length(self):
        assert GenomicInterval("chr1", 10, 20).length == 10

    def test_contains_half_open(self):
        interval = GenomicInterval("chr1", 10, 20)
        assert interval.contains("chr1", 10)
        assert interval.contains("chr1", 19)
        assert not interval.contains("chr1", 20)
        assert not interval.contains("chr2", 15)

    def test_overlap(self):
        a = GenomicInterval("chr1", 10, 20)
        assert a.overlaps(GenomicInterval("chr1", 19, 30))
        assert not a.overlaps(GenomicInterval("chr1", 20, 30))
        assert not a.overlaps(GenomicInterval("chr2", 10, 20))

    def test_intersection(self):
        a = GenomicInterval("chr1", 10, 20)
        b = GenomicInterval("chr1", 15, 30)
        assert a.intersection(b) == GenomicInterval("chr1", 15, 20)
        assert a.intersection(GenomicInterval("chr1", 25, 30)) is None

    def test_expanded_floors_at_one(self):
        assert GenomicInterval("chr1", 3, 10).expanded(5).start == 1

    def test_invalid_interval(self):
        with pytest.raises(ReproError):
            GenomicInterval("chr1", 10, 5)


class TestRegionSet:
    def test_contains(self):
        regions = RegionSet([GenomicInterval("chr1", 100, 200)])
        assert regions.contains("chr1", 150)
        assert not regions.contains("chr1", 200)
        assert not regions.contains("chr2", 150)

    def test_overlapping_query(self):
        regions = RegionSet(
            [GenomicInterval("chr1", 100, 200), GenomicInterval("chr1", 300, 400)]
        )
        hits = regions.overlapping(GenomicInterval("chr1", 150, 350))
        assert len(hits) == 2

    def test_total_length(self):
        regions = RegionSet(
            [GenomicInterval("chr1", 1, 11), GenomicInterval("chr2", 1, 21)]
        )
        assert regions.total_length() == 30


class TestTiling:
    def test_non_overlapping_cover(self):
        segments = tile_contig("chr1", 100, 30)
        assert segments[0].start == 1
        assert segments[-1].end == 101
        covered = sum(s.length for s in segments)
        assert covered == 100

    def test_overlapping_tiles(self):
        segments = tile_contig("chr1", 100, 30, overlap=10)
        # Every interior boundary is covered by two segments.
        assert segments[1].start == 31 - 10
        assert segments[0].end == 31 + 10

    def test_every_position_covered(self):
        segments = tile_contig("chr1", 97, 30, overlap=5)
        for pos in range(1, 98):
            assert any(s.start <= pos < s.end for s in segments)

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            tile_contig("chr1", 100, 0)
        with pytest.raises(ReproError):
            tile_contig("chr1", 100, 30, overlap=30)


class TestReference:
    def test_fetch_1_based(self):
        genome = ReferenceGenome({"chr1": "ACGTACGT"})
        assert genome.fetch("chr1", 1, 5) == "ACGT"
        assert genome.base_at("chr1", 5) == "A"

    def test_fetch_out_of_range(self):
        genome = ReferenceGenome({"chr1": "ACGT"})
        with pytest.raises(ReferenceError_):
            genome.fetch("chr1", 1, 10)
        with pytest.raises(ReferenceError_):
            genome.fetch("chr1", 0, 2)

    def test_unknown_contig(self):
        genome = ReferenceGenome({"chr1": "ACGT"})
        with pytest.raises(ReferenceError_):
            genome.fetch("chrZ", 1, 2)

    def test_empty_contig_rejected(self):
        with pytest.raises(ReferenceError_):
            ReferenceGenome({"chr1": ""})

    def test_sam_sequences(self):
        genome = ReferenceGenome({"chr1": "ACGT", "chr2": "AC"})
        assert genome.sam_sequences() == [("chr1", 4), ("chr2", 2)]

    def test_fasta_roundtrip(self, tmp_path):
        genome = ReferenceGenome({"chr1": "ACGT" * 50, "chr2": "TTTT" * 30})
        path = str(tmp_path / "ref.fa")
        write_fasta(path, genome, width=13)
        loaded = read_fasta(path)
        assert loaded.contigs == genome.contigs

    def test_reverse_complement(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AACG") == "CGTT"
        assert reverse_complement(reverse_complement("GATTACA")) == "GATTACA"


class TestReferenceSimulation:
    def test_deterministic(self):
        config = ReferenceSimulationConfig(contig_lengths={"chr1": 5000}, seed=5)
        a = simulate_reference(config)
        b = simulate_reference(config)
        assert a.contigs == b.contigs

    def test_annotations_present(self, reference):
        assert len(reference.centromeres) >= 1
        assert len(reference.blacklist) >= 1

    def test_centromere_is_repetitive(self, reference):
        interval = next(reference.centromeres.intervals())
        segment = reference.fetch(interval.contig, interval.start, interval.end)
        # A tandem repeat: shifting by the motif length reproduces it.
        motif_len = 7
        assert segment[:-motif_len] == segment[motif_len:]

    def test_hard_region_query(self, reference):
        interval = next(reference.centromeres.intervals())
        assert reference.in_hard_region(interval.contig, interval.start)


class TestDonorSimulation:
    def test_truth_variants_applied_to_haplotypes(self, reference):
        donor = simulate_donor(
            reference, DonorSimulationConfig(snp_rate=5e-3, seed=9)
        )
        assert donor.truth_variants
        hom = [v for v in donor.truth_variants if v.genotype == "1/1" and v.is_snp]
        if hom:
            variant = hom[0]
            for haplotype in donor.haplotypes:
                # hom-alt SNPs keep coordinates only before any indel;
                # just check sequences differ from the reference.
                assert haplotype[variant.chrom] != reference.contigs[variant.chrom]

    def test_het_variant_on_one_haplotype(self, reference):
        donor = simulate_donor(
            reference,
            DonorSimulationConfig(snp_rate=5e-3, indel_rate=0.0,
                                  het_fraction=1.0, seed=10),
        )
        het = [v for v in donor.truth_variants if v.genotype == "0/1"][0]
        hap_a, hap_b = donor.haplotypes
        assert hap_a[het.chrom][het.pos - 1] == het.alt
        assert hap_b[het.chrom][het.pos - 1] == het.ref


class TestReadSimulation:
    def test_pair_counts_match_fragments(self, pairs, fragments):
        assert len(pairs) == len(fragments)

    def test_read_lengths(self, pairs):
        fwd, rev = pairs[0]
        assert len(fwd.sequence) == 100
        assert len(rev.sequence) == 100
        assert len(fwd.qualities) == 100

    def test_names_are_paired(self, pairs):
        fwd, rev = pairs[3]
        assert fwd.name.endswith("/1")
        assert rev.name.endswith("/2")
        assert fwd.name[:-2] == rev.name[:-2]

    def test_duplicates_share_fragment_coordinates(self, fragments):
        duplicates = [f for f in fragments if f.is_duplicate]
        assert duplicates, "duplicate_fraction should produce duplicates"
        originals = {
            (f.contig, f.start, f.insert_size)
            for f in fragments if not f.is_duplicate
        }
        for dup in duplicates:
            assert (dup.contig, dup.start, dup.insert_size) in originals

    def test_quality_declines_with_cycle(self, pairs):
        first = [p[0].qualities[0] for p in pairs[:200]]
        last = [p[0].qualities[-1] for p in pairs[:200]]
        assert sum(first) / len(first) > sum(last) / len(last)

    def test_deterministic(self, donor):
        config = ReadSimulationConfig(coverage=2.0, seed=77)
        a, _ = simulate_reads(donor, config)
        b, _ = simulate_reads(donor, config)
        assert [(p[0].name, p[0].sequence) for p in a] == [
            (p[0].name, p[0].sequence) for p in b
        ]
