"""Tests for the fluid simulator, thread model, and MR round simulation."""

import pytest

from repro.cluster.costs import GB, NA12878, CostModel
from repro.cluster.fluid import FluidSimulator, Phase, Resource, SimTask
from repro.cluster.hardware import CLUSTER_A, CLUSTER_B, SINGLE_SERVER
from repro.cluster.mrsim import (
    ClusterModel,
    MapTaskSpec,
    ReduceTaskSpec,
    RoundSpec,
    simulate_round,
)
from repro.cluster.rounds_model import (
    bwa_single_node_seconds,
    chromosome_fractions,
    round1_spec,
    round3_spec,
    round5_spec,
)
from repro.cluster.threading import (
    BwaThreadModel,
    node_throughput,
    process_thread_configurations,
)
from repro.errors import SimulationError

KB, MB = 1024, 1024 * 1024


class TestHardware:
    def test_table3_cluster_a(self):
        assert CLUSTER_A.data_nodes == 15
        assert CLUSTER_A.node.cores == 24
        assert CLUSTER_A.node.core_ghz == 2.66
        assert CLUSTER_A.node.disks == 1

    def test_table3_cluster_b(self):
        assert CLUSTER_B.data_nodes == 4
        assert CLUSTER_B.node.cores == 16
        assert CLUSTER_B.node.disks == 6
        assert CLUSTER_B.node.network_bandwidth > CLUSTER_A.node.network_bandwidth

    def test_comparable_total_memory(self):
        """Table 3's design point: the clusters have comparable memory."""
        ratio = CLUSTER_A.total_memory() / CLUSTER_B.total_memory()
        assert 0.9 < ratio < 1.1

    def test_with_modifiers(self):
        assert CLUSTER_B.with_disks(2).node.disks == 2
        assert CLUSTER_A.with_data_nodes(5).data_nodes == 5
        assert CLUSTER_A.with_data_nodes(5).node.cores == 24


class TestThreadModel:
    def test_single_thread_is_unity(self):
        assert BwaThreadModel().speedup(1) == pytest.approx(1.0)

    def test_sublinear_at_24_threads(self):
        model = BwaThreadModel(readahead_bytes=128 * KB)
        assert model.speedup(24) < 24

    def test_readahead_improves_scaling(self):
        """Fig 5c: 64 MB readahead clearly beats the 128 KB default."""
        small = BwaThreadModel(readahead_bytes=128 * KB)
        large = BwaThreadModel(readahead_bytes=64 * MB)
        assert large.speedup(24) > small.speedup(24) * 1.3
        for n in range(2, 25):
            assert large.speedup(n) >= small.speedup(n)

    def test_monotone_in_threads(self):
        model = BwaThreadModel(readahead_bytes=64 * MB)
        curve = [model.speedup(n) for n in range(1, 25)]
        assert curve == sorted(curve)

    def test_interpolation_between_operating_points(self):
        mid = BwaThreadModel(readahead_bytes=4 * MB)
        assert (
            BwaThreadModel(64 * MB).serial_fraction
            < mid.serial_fraction
            < BwaThreadModel(128 * KB).serial_fraction
        )

    def test_many_processes_beat_one_wide_process(self):
        """Section 4.3: the process-thread hierarchy wins — 6 mappers x
        4 threads outperform 1 mapper x 24 threads on a 24-core node."""
        model = BwaThreadModel(readahead_bytes=128 * KB)
        assert node_throughput(6, 4, model) > node_throughput(1, 24, model)

    def test_configuration_enumeration(self):
        configs = process_thread_configurations(24)
        assert (24, 1) in configs
        assert (1, 24) in configs
        assert (6, 4) in configs
        assert all(p * t == 24 for p, t in configs)


class TestFluidSimulator:
    def cpu(self, capacity=4.0):
        return Resource("cpu", capacity)

    def test_single_task_duration(self):
        sim = FluidSimulator()
        sim.start_task(SimTask("t", [Phase(self.cpu(), 8.0, rate_cap=2.0)]))
        assert sim.run() == pytest.approx(4.0)

    def test_fair_sharing(self):
        cpu = self.cpu(capacity=2.0)
        sim = FluidSimulator()
        sim.start_task(SimTask("a", [Phase(cpu, 10.0)]))
        sim.start_task(SimTask("b", [Phase(cpu, 10.0)]))
        assert sim.run() == pytest.approx(10.0)  # 2 tasks share 2 units/s

    def test_rate_caps_respected(self):
        cpu = self.cpu(capacity=10.0)
        sim = FluidSimulator()
        sim.start_task(SimTask("capped", [Phase(cpu, 10.0, rate_cap=1.0)]))
        assert sim.run() == pytest.approx(10.0)

    def test_cap_leftover_redistributed(self):
        cpu = self.cpu(capacity=10.0)
        sim = FluidSimulator()
        sim.start_task(SimTask("capped", [Phase(cpu, 100.0, rate_cap=1.0)]))
        sim.start_task(SimTask("greedy", [Phase(cpu, 90.0)]))
        # Greedy gets 9 units/s -> finishes at t=10; capped at t=100.
        sim.run()
        greedy = next(t for t in sim.completed if t.task_id == "greedy")
        assert greedy.end_time == pytest.approx(10.0)

    def test_sequential_phases(self):
        cpu = self.cpu(1.0)
        disk = Resource("disk", 2.0)
        sim = FluidSimulator()
        sim.start_task(SimTask("t", [Phase(cpu, 3.0), Phase(disk, 4.0)]))
        assert sim.run() == pytest.approx(3.0 + 2.0)

    def test_phase_times_recorded(self):
        cpu = self.cpu(1.0)
        sim = FluidSimulator()
        task = SimTask("t", [Phase(cpu, 2.0, label="work")])
        sim.start_task(task)
        sim.run()
        assert task.phase_times == [("work", 0.0, 2.0)]

    def test_work_conservation(self):
        """Total service delivered equals total demand."""
        cpu = self.cpu(3.0)
        demands = [5.0, 7.0, 2.5, 9.0]
        sim = FluidSimulator()
        for i, demand in enumerate(demands):
            sim.start_task(SimTask(f"t{i}", [Phase(cpu, demand)]))
        wall = sim.run()
        delivered = sum(
            (t1 - t0) * fraction * cpu.capacity
            for t0, t1, fraction in sim.trace.series("cpu")
        )
        assert delivered == pytest.approx(sum(demands), rel=1e-6)
        assert wall >= sum(demands) / cpu.capacity

    def test_utilization_bounded(self):
        cpu = self.cpu(2.0)
        sim = FluidSimulator()
        for i in range(5):
            sim.start_task(SimTask(f"t{i}", [Phase(cpu, 4.0)]))
        sim.run()
        assert sim.trace.peak_utilization("cpu") <= 1.0
        assert sim.trace.mean_utilization("cpu") == pytest.approx(1.0)

    def test_zero_demand_task_completes(self):
        sim = FluidSimulator()
        sim.start_task(SimTask("empty", [Phase(self.cpu(), 0.0)]))
        assert sim.run() == 0.0
        assert len(sim.completed) == 1

    def test_resource_validation(self):
        with pytest.raises(SimulationError):
            Resource("bad", 0.0)


def quick_round(cluster, n_maps=8, reduce=True):
    maps = [
        MapTaskSpec(input_bytes=1 * GB, cpu_core_seconds=100.0,
                    output_bytes=1 * GB)
        for _ in range(n_maps)
    ]
    reduces = [
        ReduceTaskSpec(shuffle_bytes=1 * GB, merge_extra_bytes=0.5 * GB,
                       cpu_core_seconds=50.0, output_bytes=0.5 * GB)
        for _ in range(4)
    ] if reduce else None
    return RoundSpec("quick", maps, map_slots_per_node=2, reduce_tasks=reduces,
                     reduce_slots_per_node=2)


class TestMRSimulation:
    def test_round_completes(self):
        cluster = ClusterModel(CLUSTER_B)
        result = simulate_round(cluster, quick_round(cluster))
        assert result.wall_seconds > 0
        assert len(result.tasks_of("map")) == 8
        assert len(result.tasks_of("reduce")) == 4

    def test_reduce_waits_for_all_maps(self):
        cluster = ClusterModel(CLUSTER_B)
        result = simulate_round(cluster, quick_round(cluster))
        maps_done = max(t.end for t in result.tasks_of("map"))
        for reduce_task in result.tasks_of("reduce"):
            merge_phases = [
                t0 for name, t0, t1 in reduce_task.phases
                if name in ("merge", "reduce-cpu")
            ]
            if merge_phases:
                assert min(merge_phases) >= maps_done - 1e-6

    def test_map_only_round(self):
        cluster = ClusterModel(CLUSTER_B)
        result = simulate_round(cluster, quick_round(cluster, reduce=False))
        assert result.tasks_of("reduce") == []

    def test_slots_limit_concurrency(self):
        cluster = ClusterModel(CLUSTER_B)  # 4 nodes x 2 slots = 8 at once
        spec = quick_round(cluster, n_maps=16, reduce=False)
        result = simulate_round(cluster, spec)
        events = []
        for task in result.tasks_of("map"):
            events.append((task.start, 1))
            events.append((task.end, -1))
        events.sort()
        running = peak = 0
        for _, delta in events:
            running += delta
            peak = max(peak, running)
        assert peak <= 8

    def test_more_disks_never_slower(self):
        cost = CostModel()
        results = []
        for disks in (1, 2, 6):
            cluster = ClusterModel(CLUSTER_B.with_disks(disks))
            spec = round3_spec(cluster, cost, NA12878, "reg",
                               num_map_partitions=96, reducers_per_node=16,
                               map_slots_per_node=16)
            results.append(simulate_round(cluster, spec).wall_seconds)
        assert results[0] >= results[1] >= results[2]

    def test_markdup_reg_slower_than_opt(self):
        cost = CostModel()
        cluster = ClusterModel(CLUSTER_B)
        walls = {}
        for mode in ("opt", "reg"):
            spec = round3_spec(cluster, cost, NA12878, mode,
                               num_map_partitions=96, reducers_per_node=16,
                               map_slots_per_node=16)
            walls[mode] = simulate_round(cluster, spec).wall_seconds
        assert walls["reg"] > walls["opt"] * 1.5

    def test_alignment_16x1_beats_4x4(self):
        """Table 7: 16 single-threaded mappers beat 4x4 threads."""
        cost = CostModel()
        cluster = ClusterModel(CLUSTER_B)
        narrow = simulate_round(
            cluster, round1_spec(cluster, cost, NA12878, 64, 16, 1)
        ).wall_seconds
        wide = simulate_round(
            cluster, round1_spec(cluster, cost, NA12878, 64, 4, 4)
        ).wall_seconds
        assert narrow < wide

    def test_superlinear_speedup_vs_24_thread_baseline(self):
        """The headline claim: Gesall's Round 1 on 15 nodes beats the
        24-threaded Bwa baseline by more than 15x."""
        cost = CostModel()
        cluster = ClusterModel(CLUSTER_A)
        parallel = simulate_round(
            cluster, round1_spec(cluster, cost, NA12878, 90, 6, 4)
        ).wall_seconds
        baseline = bwa_single_node_seconds(cost, CLUSTER_A, threads=24)
        assert baseline / parallel > CLUSTER_A.data_nodes

    def test_round5_underutilizes_cluster(self):
        """Section 4.4 item 4: 23 chromosome partitions cannot fill 90
        slots; the wall clock tracks the largest chromosome."""
        cost = CostModel()
        cluster = ClusterModel(CLUSTER_A)
        result = simulate_round(
            cluster, round5_spec(cluster, cost, NA12878, map_slots_per_node=6)
        )
        fractions = chromosome_fractions()
        longest = max(fractions.values())
        expected_floor = (
            cost.haplotype_caller_core_seconds * 0.98 * longest
            / (CLUSTER_A.node.core_ghz / 2.4)
        )
        assert result.wall_seconds >= expected_floor * 0.95
        # Mean CPU utilization across nodes is poor.
        cpu_utils = [
            result.trace.mean_utilization(f"{node}/cpu")
            for node in cluster.nodes
        ]
        assert sum(cpu_utils) / len(cpu_utils) < 0.5

    def test_serial_slot_time_accrued(self):
        cluster = ClusterModel(CLUSTER_B)
        result = simulate_round(cluster, quick_round(cluster))
        assert result.serial_slot_seconds > 0

    def test_chromosome_fractions_sum_to_one(self):
        assert sum(chromosome_fractions().values()) == pytest.approx(1.0)
