"""Tests for data-locality scheduling, sar rendering, SamtoolsIndex."""

import pytest

from repro.cleaning.indexing import SamtoolsIndex
from repro.cleaning.sort import SortSam
from repro.cluster.costs import GB
from repro.cluster.hardware import CLUSTER_B
from repro.cluster.fluid import UtilizationTrace
from repro.cluster.monitor import (
    RAMP,
    render_disk_report,
    render_ramp,
    render_strip_chart,
    sample_utilization,
)
from repro.cluster.mrsim import (
    ClusterModel,
    MapTaskSpec,
    RoundSpec,
    simulate_round,
)
from repro.errors import PipelineError
from repro.formats.bam import read_bam
from repro.formats.sam import SamHeader


def map_task(preferred=None):
    return MapTaskSpec(
        input_bytes=0.5 * GB, cpu_core_seconds=60.0,
        output_bytes=0.1 * GB, preferred_node=preferred,
    )


class TestDataLocality:
    def test_all_local_when_spread_matches_slots(self):
        cluster = ClusterModel(CLUSTER_B)
        maps = [map_task(node) for node in cluster.nodes for _ in range(2)]
        spec = RoundSpec("local", maps, map_slots_per_node=2)
        result = simulate_round(cluster, spec)
        assert result.data_local_maps == len(maps)

    def test_skew_falls_back_to_remote(self):
        cluster = ClusterModel(CLUSTER_B)
        hot = cluster.nodes[0]
        maps = [map_task(hot) for _ in range(8)]
        spec = RoundSpec("skewed", maps, map_slots_per_node=1)
        result = simulate_round(cluster, spec)
        # Only one slot on the hot node: some tasks must go remote, but
        # the job still finishes and locality is partial.
        assert 0 < result.data_local_maps < len(maps)
        assert len(result.tasks_of("map")) == len(maps)

    def test_no_preference_runs_fine(self):
        cluster = ClusterModel(CLUSTER_B)
        maps = [map_task(None) for _ in range(6)]
        result = simulate_round(
            cluster, RoundSpec("nopref", maps, map_slots_per_node=2)
        )
        assert result.data_local_maps == 0
        assert len(result.tasks_of("map")) == 6

    def test_locality_avoids_queueing_delay(self):
        """Tasks pinned evenly finish no later than a skewed pinning."""
        cluster = ClusterModel(CLUSTER_B)
        even = [map_task(node) for node in cluster.nodes for _ in range(3)]
        skew = [map_task(cluster.nodes[0]) for _ in range(12)]
        even_wall = simulate_round(
            cluster, RoundSpec("even", even, map_slots_per_node=3)
        ).wall_seconds
        skew_wall = simulate_round(
            ClusterModel(CLUSTER_B),
            RoundSpec("skew", skew, map_slots_per_node=3),
        ).wall_seconds
        assert even_wall <= skew_wall


class TestMonitorRendering:
    @pytest.fixture()
    def traced_round(self):
        cluster = ClusterModel(CLUSTER_B)
        maps = [map_task() for _ in range(8)]
        result = simulate_round(
            cluster, RoundSpec("traced", maps, map_slots_per_node=2)
        )
        return cluster, result

    def test_samples_cover_horizon(self, traced_round):
        cluster, result = traced_round
        disk = cluster.disks[cluster.nodes[0]][0].name
        points = sample_utilization(result.trace, disk, result.wall_seconds, 20)
        assert len(points) == 20
        assert all(0.0 <= v <= 1.0 for _, v in points)
        assert points[0][0] < points[-1][0] <= result.wall_seconds

    def test_strip_chart_width(self, traced_round):
        cluster, result = traced_round
        disk = cluster.disks[cluster.nodes[0]][0].name
        strip = render_strip_chart(result.trace, disk, result.wall_seconds, 40)
        assert len(strip) == 40

    def test_disk_report_lists_all_disks(self, traced_round):
        cluster, result = traced_round
        names = [d.name for d in cluster.disks[cluster.nodes[0]]]
        report = render_disk_report(result.trace, names, result.wall_seconds)
        assert report.count("\n") == len(names)  # header + one line each

    def test_empty_horizon(self, traced_round):
        _, result = traced_round
        assert sample_utilization(result.trace, "none", 0.0) == []

    def test_empty_trace_samples_idle(self):
        trace = UtilizationTrace()
        points = sample_utilization(trace, "sda", 10.0, 8)
        assert len(points) == 8
        assert all(value == 0.0 for _, value in points)
        assert render_strip_chart(trace, "sda", 10.0, 8) == " " * 8

    def test_sample_on_interval_boundary_takes_next(self):
        # Intervals are half-open [t0, t1): a sample landing exactly on
        # a boundary belongs to the interval that starts there.
        trace = UtilizationTrace()
        trace.intervals["sda"] = [(0.0, 1.0, 1.0), (1.0, 2.0, 0.5)]
        # horizon=2, samples=1 puts the single sample at exactly t=1.0.
        assert sample_utilization(trace, "sda", 2.0, 1) == [(1.0, 0.5)]

    def test_zero_width_horizon_and_no_samples(self):
        trace = UtilizationTrace()
        trace.intervals["sda"] = [(0.0, 1.0, 1.0)]
        assert sample_utilization(trace, "sda", 0.0, 10) == []
        assert sample_utilization(trace, "sda", -1.0, 10) == []
        assert sample_utilization(trace, "sda", 1.0, 0) == []
        assert render_strip_chart(trace, "sda", 0.0) == ""

    def test_render_ramp_clamps_out_of_range(self):
        assert render_ramp([-1.0, 0.0, 1.0, 2.0]) == "  @@"
        assert render_ramp([0.5]) == RAMP[5]
        assert render_ramp([]) == ""


class TestSamtoolsIndex:
    def test_builds_bam_and_index(self, sam_header, aligned):
        _, sorted_records = SortSam("coordinate").run(sam_header, aligned[:300])
        data, index = SamtoolsIndex(chunk_bytes=2048).build(
            sam_header, sorted_records
        )
        _, parsed = read_bam(data)
        assert parsed == sorted_records
        assert index.chunk_count() >= 1

    def test_rejects_unsorted(self, sam_header, aligned):
        shuffled = sorted(aligned[:100], key=lambda r: r.qname, reverse=True)
        mapped = [r for r in shuffled if r.is_mapped]
        if mapped[0].pos < mapped[-1].pos:
            mapped.reverse()
        with pytest.raises(PipelineError):
            SamtoolsIndex().build(sam_header, mapped)

    def test_unsorted_allowed_when_disabled(self, sam_header, aligned):
        indexer = SamtoolsIndex(require_sorted=False)
        data, _ = indexer.build(sam_header, aligned[:50])
        assert data
