"""Unit tests for base quality score recalibration."""

import pytest

from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import SamRecord, encode_quals
from repro.genome.reference import ReferenceGenome
from repro.recal.apply import PrintReads
from repro.recal.covariates import (
    BaseObservation,
    ContextCovariate,
    CycleCovariate,
    ReadGroupCovariate,
    aligned_pairs,
    observations,
)
from repro.recal.recalibrator import (
    BaseRecalibrator,
    CovariateCounts,
    RecalibrationTable,
    empirical_quality,
)


def rec(seq="ACGTACGTAC", pos=1, cigar="10M", flag_bits=0, quals=None,
        rg="RG1"):
    return SamRecord(
        "r", F.SamFlags(flag_bits), "chr1", pos, 60, Cigar.parse(cigar),
        seq=seq, qual=encode_quals(quals or [30] * len(seq)),
        tags={"RG": rg},
    )


GENOME = ReferenceGenome({"chr1": "ACGTACGTACGTACGTACGT"})


class TestAlignedPairs:
    def test_simple_match(self):
        pairs = list(aligned_pairs(rec(cigar="10M", pos=5)))
        assert pairs[0] == (0, 5)
        assert pairs[-1] == (9, 14)

    def test_soft_clip_advances_read_only(self):
        pairs = list(aligned_pairs(rec(cigar="2S8M", pos=5)))
        assert pairs[0] == (2, 5)

    def test_insertion_skips_read_bases(self):
        pairs = list(aligned_pairs(rec(cigar="4M2I4M", pos=1)))
        read_offsets = [p[0] for p in pairs]
        assert 4 not in read_offsets and 5 not in read_offsets
        assert pairs[4] == (6, 5)

    def test_deletion_skips_ref(self):
        pairs = list(aligned_pairs(rec(cigar="5M3D5M", pos=1)))
        assert pairs[5] == (5, 9)


class TestCovariates:
    def obs(self, record, offset=0):
        return BaseObservation(record, offset, 1, "A", record.seq[offset], 30)

    def test_read_group(self):
        assert ReadGroupCovariate().value(self.obs(rec(rg="LANE3"))) == "LANE3"

    def test_cycle_forward(self):
        assert CycleCovariate().value(self.obs(rec(), offset=4)) == 5

    def test_cycle_reverse_negated(self):
        record = rec(flag_bits=F.REVERSE)
        assert CycleCovariate().value(self.obs(record, offset=4)) == -5

    def test_context(self):
        record = rec(seq="ACGTACGTAC")
        assert ContextCovariate(2).value(self.obs(record, offset=3)) == "GT"

    def test_context_at_read_start(self):
        assert ContextCovariate(2).value(self.obs(rec(), offset=0)) == "NN"


class TestObservations:
    def test_counts_and_mismatch_detection(self):
        record = rec(seq="ACGTACGTAC", pos=1)  # matches reference
        obs = list(observations(record, GENOME))
        assert len(obs) == 10
        assert not any(o.is_mismatch for o in obs)

    def test_mismatch_flagged(self):
        record = rec(seq="TCGTACGTAC", pos=1)  # first base wrong
        obs = list(observations(record, GENOME))
        assert obs[0].is_mismatch
        assert sum(o.is_mismatch for o in obs) == 1

    def test_duplicates_and_unmapped_skipped(self):
        dup = rec()
        dup.set_duplicate(True)
        assert list(observations(dup, GENOME)) == []
        unmapped = rec(flag_bits=F.UNMAPPED)
        assert list(observations(unmapped, GENOME)) == []


class TestRecalibrationTable:
    def test_empirical_quality_smoothing(self):
        assert empirical_quality(0, 0) == pytest.approx(3.0103, abs=1e-3)
        assert empirical_quality(998, 0) == pytest.approx(30.0, abs=0.01)

    def test_counts_merge(self):
        a = CovariateCounts(10, 1)
        a.merge(CovariateCounts(10, 3))
        assert (a.observed, a.errors) == (20, 4)

    def test_table_merge_equals_single_pass(self):
        recal = BaseRecalibrator(GENOME)
        records = [rec(seq="TCGTACGTAC"), rec(seq="ACGTACGTAC")]
        whole = recal.build_table(records)
        part1 = recal.build_table(records[:1])
        part2 = recal.build_table(records[1:])
        part1.merge(part2)
        assert part1.total_observations() == whole.total_observations()
        assert part1.read_group["RG1"].errors == whole.read_group["RG1"].errors

    def test_known_sites_excluded(self):
        recal = BaseRecalibrator(GENOME, known_sites={("chr1", 1)})
        table = recal.build_table([rec(seq="TCGTACGTAC")])
        assert table.read_group["RG1"].errors == 0

    def test_recalibrate_unknown_group_returns_reported(self):
        table = RecalibrationTable()
        assert table.recalibrate("nope", 30, {}) == 30

    def test_recalibrate_moves_towards_empirical(self):
        table = RecalibrationTable()
        # Reported Q30 (error 1e-3) but observed error rate ~1e-1.
        for i in range(200):
            table.add_observation("RG1", 30, {}, is_error=(i % 10 == 0))
        recalibrated = table.recalibrate("RG1", 30, {})
        assert recalibrated < 30
        assert recalibrated == pytest.approx(10, abs=2)


class TestPrintReads:
    def build_table(self):
        recal = BaseRecalibrator(GENOME)
        records = []
        # Many high-quality observations with a few errors.
        for i in range(50):
            seq = "ACGTACGTAC" if i % 5 else "TCGTACGTAC"
            records.append(rec(seq=seq))
        return recal.build_table(records)

    def test_rewrites_qualities(self):
        table = self.build_table()
        record = rec()
        from repro.formats.sam import SamHeader
        _, out = PrintReads(table).run(
            SamHeader(sequences=[("chr1", 20)]), [record]
        )
        assert out[0].base_qualities() != record.base_qualities()

    def test_star_sequence_untouched(self):
        table = self.build_table()
        record = rec()
        record.seq = "*"
        record.qual = "*"
        PrintReads(table).apply_to_record(record)
        assert record.qual == "*"

    def test_quality_bounds(self):
        table = self.build_table()
        record = rec(quals=[2] * 10)
        PrintReads(table).apply_to_record(record)
        assert all(2 <= q <= 60 for q in record.base_qualities())
