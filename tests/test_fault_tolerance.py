"""Storage-plane fault tolerance: checksums, failover, re-replication.

The contract under test (paper section 2, HDFS semantics): every read
is served from a checksum-verified replica; corrupt or dead replicas
are skipped and repaired; only when *every* replica of a block is gone
or corrupt does the block's data become unrecoverable.
"""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BlockLostError, HdfsError
from repro.hdfs.filesystem import Hdfs
from repro.obs.recorder import TraceRecorder


def make_hdfs(nodes=4, replication=2, block_size=256):
    """Small traced cluster so counter assertions can read metrics."""
    return Hdfs(
        [f"n{i}" for i in range(nodes)], replication=replication,
        block_size=block_size, recorder=TraceRecorder(),
    )


def counter(hdfs, name):
    return hdfs.recorder.metrics.counter(name).value


PAYLOAD = bytes(range(256)) * 3  # spans three 256-byte blocks


class TestChecksums:
    def test_checksum_recorded_at_write(self):
        hdfs = make_hdfs()
        hdfs.put("/f", PAYLOAD)
        for block in hdfs.blocks_of("/f"):
            assert block.checksum == zlib.crc32(block.data)
            for node in block.replicas:
                assert block.replica_is_healthy(node)

    def test_corrupt_primary_detected_and_failed_over(self):
        hdfs = make_hdfs()
        hdfs.put("/f", PAYLOAD)
        node = hdfs.corrupt_replica("/f", block_index=1, replica_index=0)
        assert hdfs.get("/f") == PAYLOAD
        assert counter(hdfs, "hdfs.read.corrupt_replicas") == 1
        assert counter(hdfs, "hdfs.read.failovers") == 1
        # The namenode dropped the rotten replica from its placement map.
        block = hdfs.blocks_of("/f")[1]
        assert node not in block.replicas
        assert block.block_id not in hdfs.datanode(node).block_ids

    def test_corruption_detection_is_lazy(self):
        """A corrupt *secondary* replica is only noticed when read."""
        hdfs = make_hdfs()
        hdfs.put("/f", PAYLOAD)
        hdfs.corrupt_replica("/f", block_index=0, replica_index=1)
        assert hdfs.get("/f") == PAYLOAD  # primary is healthy
        assert counter(hdfs, "hdfs.read.corrupt_replicas") == 0

    def test_corrupt_replica_is_rereplicated_after_detection(self):
        hdfs = make_hdfs()
        hdfs.put("/f", PAYLOAD)
        hdfs.corrupt_replica("/f", block_index=0, replica_index=0)
        hdfs.get("/f")  # detect + drop
        report = hdfs.re_replicate()
        assert report == {"restored": 1, "lost": 0}
        block = hdfs.blocks_of("/f")[0]
        assert len(block.replicas) == 2
        assert all(block.replica_is_healthy(n) for n in block.replicas)

    def test_block_lost_only_when_every_replica_unusable(self):
        hdfs = make_hdfs()
        hdfs.put("/f", b"x" * 100)  # single block, two replicas
        hdfs.corrupt_replica("/f", replica_index=1)
        # One healthy replica left: still readable.
        dead = hdfs.blocks_of("/f")[0].replicas[0]
        hdfs.kill_datanode(dead, re_replicate=False)
        with pytest.raises(BlockLostError):
            hdfs.get("/f")
        assert counter(hdfs, "hdfs.blocks.lost") >= 1

    def test_all_replicas_corrupt_raises(self):
        hdfs = make_hdfs()
        hdfs.put("/f", b"y" * 50)
        hdfs.corrupt_replica("/f", replica_index=0)
        hdfs.corrupt_replica("/f", replica_index=1)
        with pytest.raises(BlockLostError):
            hdfs.get("/f")

    def test_corrupt_replica_bounds_checked(self):
        hdfs = make_hdfs()
        hdfs.put("/f", b"z")
        with pytest.raises(HdfsError):
            hdfs.corrupt_replica("/f", block_index=9)
        with pytest.raises(HdfsError):
            hdfs.corrupt_replica("/f", replica_index=9)


class TestKillDatanode:
    def test_kill_restores_replication_factor(self):
        hdfs = make_hdfs()
        for i in range(6):
            hdfs.put(f"/d/p{i}", PAYLOAD, logical_partition=bool(i % 2))
        victim = "n0"
        report = hdfs.kill_datanode(victim)
        assert report["lost"] == 0
        assert report["restored"] > 0
        assert victim not in hdfs.live_nodes()
        live = set(hdfs.live_nodes())
        for i in range(6):
            assert hdfs.get(f"/d/p{i}") == PAYLOAD
            for block in hdfs.blocks_of(f"/d/p{i}"):
                assert len(block.replicas) == 2
                assert set(block.replicas) <= live
        assert counter(hdfs, "hdfs.datanodes.killed") == 1
        assert counter(hdfs, "hdfs.rereplicated.replicas") == \
            report["restored"]

    def test_kill_is_idempotent(self):
        hdfs = make_hdfs()
        hdfs.put("/f", PAYLOAD)
        hdfs.kill_datanode("n1")
        assert hdfs.kill_datanode("n1") == {"restored": 0, "lost": 0}
        assert counter(hdfs, "hdfs.datanodes.killed") == 1

    def test_kill_sole_replica_loses_the_block(self):
        hdfs = make_hdfs(nodes=2, replication=1)
        hdfs.put("/f", b"irreplaceable")
        holder = hdfs.blocks_of("/f")[0].replicas[0]
        report = hdfs.kill_datanode(holder)
        assert report["lost"] >= 1
        with pytest.raises(BlockLostError):
            hdfs.get("/f")

    def test_put_after_kill_avoids_dead_node(self):
        hdfs = make_hdfs()
        hdfs.kill_datanode("n2")
        hdfs.put("/late", PAYLOAD)
        for block in hdfs.blocks_of("/late"):
            assert "n2" not in block.replicas


class TestDecommission:
    def test_decommission_never_loses_sole_replicas(self):
        """Unlike a kill, a drain copies data off the node first — so
        even replication=1 survives it."""
        hdfs = make_hdfs(nodes=3, replication=1)
        for i in range(5):
            hdfs.put(f"/d/p{i}", PAYLOAD)
        report = hdfs.decommission("n0")
        assert report["lost"] == 0
        assert "n0" not in hdfs.live_nodes()
        assert not hdfs.datanode("n0").block_ids
        for i in range(5):
            assert hdfs.get(f"/d/p{i}") == PAYLOAD

    def test_decommission_restores_factor_on_survivors(self):
        hdfs = make_hdfs()
        hdfs.put("/f", PAYLOAD)
        hdfs.decommission("n0")
        live = set(hdfs.live_nodes())
        for block in hdfs.blocks_of("/f"):
            assert len(block.replicas) == 2
            assert set(block.replicas) <= live
        assert counter(hdfs, "hdfs.datanodes.decommissioned") == 1

    def test_double_decommission_is_a_noop(self):
        hdfs = make_hdfs()
        hdfs.put("/f", PAYLOAD)
        hdfs.decommission("n3")
        assert hdfs.decommission("n3") == {"restored": 0, "lost": 0}
        assert counter(hdfs, "hdfs.datanodes.decommissioned") == 1


class TestOverwrite:
    def test_duplicate_put_still_raises_by_default(self):
        hdfs = make_hdfs()
        hdfs.put("/f", b"old")
        with pytest.raises(HdfsError, match="exists"):
            hdfs.put("/f", b"new")

    def test_overwrite_replaces_content(self):
        hdfs = make_hdfs()
        hdfs.put("/f", b"old-bytes", logical_partition=True)
        hdfs.put("/f", b"new", overwrite=True)
        assert hdfs.get("/f") == b"new"
        assert hdfs.get_file("/f").logical_partition is False

    def test_overwrite_frees_old_blocks(self):
        hdfs = make_hdfs()
        hdfs.put("/f", PAYLOAD)
        hdfs.put("/f", b"tiny", overwrite=True)
        hdfs.delete("/f")
        assert all(v == 0 for v in hdfs.used_bytes_by_node().values())
        assert all(
            not hdfs.datanode(n).block_ids for n in hdfs.nodes
        )


class TestSingleNodeKillProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        payloads=st.lists(
            st.binary(min_size=0, max_size=1500), min_size=1, max_size=5
        ),
        victim=st.integers(min_value=0, max_value=3),
        logical=st.booleans(),
    )
    def test_any_single_datanode_kill_loses_nothing(
        self, payloads, victim, logical
    ):
        """Property: with replication >= 2, killing any one datanode
        leaves every file readable byte-identically and re-replication
        restores the target replica count on the survivors."""
        hdfs = make_hdfs(nodes=4, replication=2, block_size=512)
        for i, payload in enumerate(payloads):
            hdfs.put(
                f"/data/part-{i:03d}", payload, logical_partition=logical
            )
        report = hdfs.kill_datanode(f"n{victim}")
        assert report["lost"] == 0
        live = set(hdfs.live_nodes())
        for i, payload in enumerate(payloads):
            path = f"/data/part-{i:03d}"
            assert hdfs.get(path) == payload
            for block in hdfs.blocks_of(path):
                assert len(block.replicas) == 2
                assert set(block.replicas) <= live
