"""Unit tests for the HDFS simulation and the BAM storage substrate."""

import random

import pytest

from repro.errors import HdfsError
from repro.formats import flags as F
from repro.formats.bam import bam_bytes, read_bam
from repro.formats.cigar import Cigar
from repro.formats.sam import SamHeader, SamRecord
from repro.hdfs.bam_storage import (
    BamBlockRecordReader,
    read_bam_header,
    read_distributed_bam,
    upload_bam,
    upload_logical_partitions,
)
from repro.hdfs.blocks import split_into_blocks
from repro.hdfs.filesystem import Hdfs
from repro.hdfs.placement import BlockPlacementPolicy, LogicalBlockPlacementPolicy


def make_hdfs(block_size=2048, nodes=4):
    return Hdfs(
        [f"n{i}" for i in range(nodes)], replication=2, block_size=block_size
    )


def make_records(n):
    rng = random.Random(42)
    return [
        SamRecord(
            f"r{i:05d}", F.SamFlags(0), "chr1", rng.randrange(1, 8000), 60,
            Cigar.parse("50M"), seq="A" * 50, qual="I" * 50,
        )
        for i in range(n)
    ]


class TestBlocks:
    def test_split_exact(self):
        assert split_into_blocks(b"abcdef", 2) == [b"ab", b"cd", b"ef"]

    def test_split_remainder(self):
        assert split_into_blocks(b"abcde", 2) == [b"ab", b"cd", b"e"]

    def test_split_empty(self):
        assert split_into_blocks(b"", 4) == [b""]

    def test_split_bad_size(self):
        with pytest.raises(HdfsError):
            split_into_blocks(b"abc", 0)


class TestPlacement:
    def test_default_spreads_blocks(self):
        policy = BlockPlacementPolicy(replication=2)
        placements = policy.place_file("/f", 4, ["a", "b", "c"])
        primaries = [p[0] for p in placements]
        assert len(set(primaries)) > 1
        assert all(len(p) == 2 for p in placements)

    def test_logical_pins_one_node(self):
        policy = LogicalBlockPlacementPolicy(replication=2)
        placements = policy.place_file("/part-1", 5, ["a", "b", "c"])
        assert len({p[0] for p in placements}) == 1

    def test_logical_different_files_spread(self):
        policy = LogicalBlockPlacementPolicy(replication=1)
        owners = {
            policy.place_file(f"/part-{i}", 1, ["a", "b", "c", "d"])[0][0]
            for i in range(24)
        }
        assert len(owners) > 1

    def test_replication_capped_by_nodes(self):
        policy = BlockPlacementPolicy(replication=5)
        placements = policy.place_file("/f", 1, ["a", "b"])
        assert len(placements[0]) == 2

    def test_no_nodes_rejected(self):
        with pytest.raises(HdfsError):
            BlockPlacementPolicy().place_file("/f", 1, [])


class TestHdfs:
    def test_put_get_roundtrip(self):
        hdfs = make_hdfs()
        data = bytes(range(256)) * 40
        hdfs.put("/a/b", data)
        assert hdfs.get("/a/b") == data

    def test_blocks_created(self):
        hdfs = make_hdfs(block_size=1000)
        hdfs.put("/f", b"x" * 3500)
        assert len(hdfs.blocks_of("/f")) == 4
        assert hdfs.block_offsets("/f") == [0, 1000, 2000, 3000]

    def test_duplicate_path_rejected(self):
        hdfs = make_hdfs()
        hdfs.put("/f", b"x")
        with pytest.raises(HdfsError):
            hdfs.put("/f", b"y")

    def test_missing_file(self):
        with pytest.raises(HdfsError):
            make_hdfs().get("/nope")

    def test_delete_releases_blocks(self):
        hdfs = make_hdfs()
        hdfs.put("/f", b"x" * 5000)
        hdfs.delete("/f")
        assert not hdfs.exists("/f")
        assert all(v == 0 for v in hdfs.used_bytes_by_node().values())

    def test_read_from_range(self):
        hdfs = make_hdfs(block_size=100)
        data = bytes(range(250))
        hdfs.put("/f", data)
        assert hdfs.read_from("/f", 95, 10) == data[95:105]  # crosses block

    def test_list_dir(self):
        hdfs = make_hdfs()
        hdfs.put("/d/a", b"1")
        hdfs.put("/d/b", b"2")
        hdfs.put("/e/c", b"3")
        assert hdfs.list_dir("/d") == ["/d/a", "/d/b"]

    def test_replication_tracked(self):
        hdfs = make_hdfs()
        hdfs.put("/f", b"x" * 100)
        block = hdfs.blocks_of("/f")[0]
        assert len(hdfs.nodes_with_replica(block.block_id)) == 2


class TestBamStorage:
    def test_distributed_roundtrip_small_blocks(self):
        hdfs = make_hdfs(block_size=1500)
        header = SamHeader(sequences=[("chr1", 10000)])
        records = make_records(400)
        upload_bam(hdfs, "/data.bam", header, records, chunk_bytes=600)
        got_header, got_records = read_distributed_bam(hdfs, "/data.bam")
        assert got_header == header
        assert got_records == records

    def test_chunks_span_block_boundaries(self):
        """The core claim of section 3.1: chunks crossing block edges
        are read exactly once, by the block the chunk starts in."""
        hdfs = make_hdfs(block_size=777)  # guaranteed misalignment
        header = SamHeader(sequences=[("chr1", 10000)])
        records = make_records(300)
        upload_bam(hdfs, "/data.bam", header, records, chunk_bytes=500)
        per_block_counts = []
        collected = []
        for block_index in range(len(hdfs.blocks_of("/data.bam"))):
            reader = BamBlockRecordReader(hdfs, "/data.bam", block_index)
            block_records = reader.records()
            per_block_counts.append(len(block_records))
            collected.extend(block_records)
        assert collected == records
        assert sum(per_block_counts) == len(records)

    def test_header_fetch(self):
        hdfs = make_hdfs()
        header = SamHeader(sequences=[("chr1", 10000)], sort_order="coordinate")
        upload_bam(hdfs, "/h.bam", header, make_records(10))
        assert read_bam_header(hdfs, "/h.bam") == header

    def test_header_fetch_rejects_non_bam(self):
        hdfs = make_hdfs()
        hdfs.put("/junk", b"this is not a bam" * 10)
        with pytest.raises(Exception):
            read_bam_header(hdfs, "/junk")

    def test_logical_partitions_colocated(self):
        hdfs = make_hdfs(block_size=800)
        header = SamHeader(sequences=[("chr1", 10000)])
        records = make_records(300)
        paths = upload_logical_partitions(
            hdfs, "/parts", header, [records[:150], records[150:]],
            chunk_bytes=400,
        )
        assert len(paths) == 2
        for path in paths:
            primaries = {b.replicas[0] for b in hdfs.blocks_of(path)}
            assert len(primaries) == 1

    def test_logical_partitions_roundtrip(self):
        hdfs = make_hdfs(block_size=800)
        header = SamHeader(sequences=[("chr1", 10000)])
        records = make_records(100)
        paths = upload_logical_partitions(
            hdfs, "/parts", header, [records[:40], records[40:]]
        )
        loaded = []
        for path in paths:
            _, part = read_bam(hdfs.get(path))
            loaded.extend(part)
        assert loaded == records

    def test_invalid_block_index(self):
        hdfs = make_hdfs()
        header = SamHeader(sequences=[("chr1", 10000)])
        upload_bam(hdfs, "/x.bam", header, make_records(5))
        with pytest.raises(HdfsError):
            BamBlockRecordReader(hdfs, "/x.bam", 99)

    @pytest.mark.parametrize("block_size", [300, 512, 1024, 4096, 100000])
    def test_roundtrip_any_block_size(self, block_size):
        hdfs = make_hdfs(block_size=block_size)
        header = SamHeader(sequences=[("chr1", 10000)])
        records = make_records(120)
        upload_bam(hdfs, "/t.bam", header, records, chunk_bytes=450)
        _, got = read_distributed_bam(hdfs, "/t.bam")
        assert got == records
