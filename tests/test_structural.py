"""Tests for the GASVLite structural variant caller and its round."""

import pytest

from repro.align.index import ReferenceIndex
from repro.align.pairing import PairedEndAligner
from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import SamRecord, encode_quals
from repro.genome.simulate import (
    DonorSimulationConfig,
    ReadSimulationConfig,
    ReferenceSimulationConfig,
    simulate_donor,
    simulate_reads,
    simulate_reference,
)
from repro.variants.structural import (
    DELETION,
    INVERSION,
    GASVConfig,
    GASVLite,
    estimate_insert_distribution,
)


def make_pair(qname, pos1, pos2, tlen, rev2=True, mapq=60, proper=True,
              read_len=50):
    bits1 = F.PAIRED | F.FIRST_IN_PAIR
    bits2 = F.PAIRED | F.SECOND_IN_PAIR
    if proper:
        bits1 |= F.PROPER_PAIR
        bits2 |= F.PROPER_PAIR
    if rev2:
        bits2 |= F.REVERSE
        bits1 |= F.MATE_REVERSE
    cigar = Cigar.parse(f"{read_len}M")
    quals = encode_quals([30] * read_len)
    end1 = SamRecord(qname, F.SamFlags(bits1), "chr1", pos1, mapq, cigar,
                     tlen=tlen, seq="A" * read_len, qual=quals)
    end2 = SamRecord(qname, F.SamFlags(bits2), "chr1", pos2, mapq, cigar,
                     tlen=-tlen, seq="A" * read_len, qual=quals)
    return [end1, end2]


def background(n=60, insert=300, start=1000):
    """Concordant FR pairs to anchor the insert-size estimate."""
    records = []
    for i in range(n):
        pos1 = start + 17 * i
        pos2 = pos1 + insert - 50
        records.extend(make_pair(f"bg{i}", pos1, pos2, insert))
    return records


class TestInsertEstimate:
    def test_estimates_mean(self):
        mean, sd = estimate_insert_distribution(background())
        assert mean == pytest.approx(300, abs=5)
        assert sd >= 1.0

    def test_empty(self):
        assert estimate_insert_distribution([]) == (0.0, 1.0)


class TestGASVLite:
    def test_deletion_cluster_called(self):
        records = background()
        # 6 pairs spanning a ~400 bp deletion at ~5000: insert ~700.
        for i in range(6):
            pos1 = 4850 + 8 * i
            pos2 = pos1 + 650
            records.extend(
                make_pair(f"del{i}", pos1, pos2, 700, proper=False)
            )
        calls = GASVLite().call(records)
        deletions = [c for c in calls if c.kind == DELETION]
        assert len(deletions) == 1
        call = deletions[0]
        assert call.support == 6
        assert 4850 < call.start < 5600
        assert call.size_estimate == pytest.approx(400, abs=60)

    def test_inversion_cluster_called(self):
        records = background()
        for i in range(5):
            pos1 = 7000 + 9 * i
            records.extend(
                make_pair(f"inv{i}", pos1, pos1 + 400, 0, rev2=False,
                          proper=False)
            )
        calls = GASVLite().call(records)
        inversions = [c for c in calls if c.kind == INVERSION]
        assert len(inversions) == 1
        assert inversions[0].support == 5

    def test_insufficient_support_suppressed(self):
        records = background()
        records.extend(make_pair("lone", 5000, 5700, 750, proper=False))
        calls = GASVLite(GASVConfig(min_support=4)).call(records)
        assert calls == []

    def test_low_mapq_pairs_ignored(self):
        records = background()
        for i in range(6):
            records.extend(
                make_pair(f"bad{i}", 5000 + 5 * i, 5700 + 5 * i, 750,
                          mapq=0, proper=False)
            )
        assert GASVLite().call(records) == []

    def test_duplicates_ignored(self):
        records = background()
        for i in range(6):
            pair = make_pair(f"dup{i}", 5000 + 5 * i, 5700 + 5 * i, 750,
                             proper=False)
            for record in pair:
                record.set_duplicate(True)
            records.extend(pair)
        assert GASVLite().call(records) == []

    def test_distant_clusters_not_merged(self):
        records = background(n=80)
        for base, tag in ((3000, "a"), (9000, "b")):
            for i in range(5):
                records.extend(
                    make_pair(f"{tag}{i}", base + 7 * i, base + 700 + 7 * i,
                              750, proper=False)
                )
        calls = [c for c in GASVLite().call(records) if c.kind == DELETION]
        assert len(calls) == 2

    def test_no_proper_pairs_no_calls(self):
        assert GASVLite().call([]) == []


class TestEndToEndDetection:
    @pytest.fixture(scope="class")
    def sv_sample(self):
        reference = simulate_reference(
            ReferenceSimulationConfig(contig_lengths={"chr1": 15000}, seed=41)
        )
        donor = simulate_donor(
            reference,
            DonorSimulationConfig(structural_deletions=1,
                                  structural_deletion_length=400, seed=42),
        )
        pairs, _ = simulate_reads(
            donor, ReadSimulationConfig(coverage=25.0, seed=43)
        )
        records = PairedEndAligner(ReferenceIndex(reference)).align_all(
            pairs, batch_size=800
        )
        return reference, donor, records

    def test_truth_sv_separated_from_small_variants(self, sv_sample):
        _, donor, _ = sv_sample
        assert len(donor.truth_structural) == 1
        sv = donor.truth_structural[0]
        assert len(sv.ref) - len(sv.alt) >= 50
        assert all(
            len(v.ref) - len(v.alt) < 50 for v in donor.truth_variants
        )

    def test_planted_deletion_detected(self, sv_sample):
        reference, donor, records = sv_sample
        sv = donor.truth_structural[0]
        calls = GASVLite().call(records)
        hit = [
            c for c in calls
            if c.kind == DELETION
            and c.overlaps(sv.chrom, sv.pos, sv.pos + len(sv.ref), margin=200)
        ]
        assert len(hit) == 1
        assert hit[0].size_estimate == pytest.approx(400, rel=0.25)

    def test_sv_clear_of_hard_regions(self, sv_sample):
        reference, donor, _ = sv_sample
        sv = donor.truth_structural[0]
        for pos in range(sv.pos, sv.pos + len(sv.ref), 40):
            assert not reference.in_hard_region(sv.chrom, pos)

    def test_sv_round_over_partitions(self, sv_sample, tmp_path):
        from repro.gdpt.partitioner import split_pairs_contiguously
        from repro.hdfs.bam_storage import upload_logical_partitions
        from repro.hdfs.filesystem import Hdfs
        from repro.mapreduce.engine import MapReduceEngine
        from repro.wrappers.rounds import GesallRounds
        from repro.formats.sam import SamHeader

        reference, donor, records = sv_sample
        hdfs = Hdfs(["n0", "n1"], replication=1, block_size=64 * 1024)
        engine = MapReduceEngine(nodes=hdfs.nodes)
        header = SamHeader(sequences=reference.sam_sequences())
        paths = upload_logical_partitions(hdfs, "/sv", header, [records])
        rounds = GesallRounds(hdfs, engine, aligner=None, reference=reference)
        calls = rounds.round5_structural_variants(paths)
        sv = donor.truth_structural[0]
        assert any(
            c.kind == DELETION
            and c.overlaps(sv.chrom, sv.pos, sv.pos + len(sv.ref), margin=200)
            for c in calls
        )


class TestCombiner:
    """Combiner support added for the recalibration round."""

    def test_combiner_reduces_shuffle(self):
        from repro.mapreduce import counters as C
        from repro.mapreduce.engine import MapReduceEngine
        from repro.mapreduce.job import JobConf, make_splits

        def mapper(payload, ctx):
            for word in payload.split():
                ctx.emit(word, 1)

        def reducer(key, values, ctx):
            ctx.emit(key, sum(values))

        engine = MapReduceEngine()
        splits = make_splits(["a a a a b", "b a a"])
        plain = engine.run(
            JobConf("plain", mapper, reducer, num_reducers=2), splits
        )
        combined = engine.run(
            JobConf("combined", mapper, reducer, combiner=reducer,
                    num_reducers=2),
            splits,
        )
        assert sorted(plain.all_outputs()) == sorted(combined.all_outputs())
        assert combined.counters.get(C.SHUFFLED_RECORDS) < plain.counters.get(
            C.SHUFFLED_RECORDS
        )

    def test_combiner_ignored_for_map_only(self):
        from repro.mapreduce.engine import MapReduceEngine
        from repro.mapreduce.job import JobConf, make_splits

        def mapper(payload, ctx):
            ctx.emit(payload, 1)

        engine = MapReduceEngine()
        result = engine.run(
            JobConf("mo", mapper, combiner=lambda k, v, c: None),
            make_splits(["x"]),
        )
        assert result.all_outputs() == [("x", 1)]
