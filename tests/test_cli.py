"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.formats.vcf import read_vcf
from repro.mapreduce.executors import fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(scope="module")
def sample_dir(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("sample"))
    code = main([
        "simulate", "--out", out, "--length", "9000",
        "--coverage", "8", "--seed", "3",
    ])
    assert code == 0
    return out


class TestSimulate:
    def test_files_written(self, sample_dir):
        for name in ("reference.fa", "reads_1.fastq", "reads_2.fastq",
                     "truth.vcf"):
            assert os.path.exists(os.path.join(sample_dir, name))

    def test_truth_vcf_parses(self, sample_dir):
        truth = list(read_vcf(os.path.join(sample_dir, "truth.vcf")))
        assert truth
        assert all(v.chrom in ("chr1", "chr2") for v in truth)

    def test_fastq_pairing(self, sample_dir):
        from repro.formats.fastq import interleave, read_fastq
        pairs = list(interleave(
            read_fastq(os.path.join(sample_dir, "reads_1.fastq")),
            read_fastq(os.path.join(sample_dir, "reads_2.fastq")),
        ))
        assert pairs

    def test_deterministic(self, tmp_path):
        out_a = str(tmp_path / "a")
        out_b = str(tmp_path / "b")
        for out in (out_a, out_b):
            main(["simulate", "--out", out, "--length", "6000", "--seed", "9"])
        with open(os.path.join(out_a, "reads_1.fastq")) as fa, \
                open(os.path.join(out_b, "reads_1.fastq")) as fb:
            assert fa.read() == fb.read()


class TestRun:
    @pytest.mark.parametrize("mode", ["serial", "parallel"])
    def test_run_writes_vcf(self, sample_dir, tmp_path, mode, capsys):
        vcf_path = str(tmp_path / f"{mode}.vcf")
        code = main([
            "run", "--data", sample_dir, "--mode", mode, "--vcf", vcf_path,
            "--partitions", "4",
        ])
        assert code == 0
        variants = list(read_vcf(vcf_path))
        assert variants
        captured = capsys.readouterr().out
        assert "precision" in captured

    def test_serial_and_parallel_mostly_agree(self, sample_dir, tmp_path):
        serial_vcf = str(tmp_path / "s.vcf")
        parallel_vcf = str(tmp_path / "p.vcf")
        main(["run", "--data", sample_dir, "--mode", "serial",
              "--vcf", serial_vcf])
        main(["run", "--data", sample_dir, "--mode", "parallel",
              "--vcf", parallel_vcf, "--partitions", "4"])
        serial_sites = {v.site_key() for v in read_vcf(serial_vcf)}
        parallel_sites = {v.site_key() for v in read_vcf(parallel_vcf)}
        overlap = len(serial_sites & parallel_sites)
        assert overlap >= 0.8 * max(len(serial_sites), 1)


class TestTrace:
    def test_trace_report_and_chrome_json(self, sample_dir, tmp_path, capsys):
        import json

        trace_path = str(tmp_path / "trace.json")
        jsonl_path = str(tmp_path / "trace.jsonl")
        code = main([
            "trace", "--data", sample_dir, "--partitions", "4",
            "--trace-out", trace_path, "--jsonl", jsonl_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "round:round1" in out and "round:round5" in out
        assert "task phase totals" in out
        assert "per-round tasks" in out
        assert "hdfs: put" in out
        with open(trace_path) as handle:
            trace = json.load(handle)
        rounds = [
            e for e in trace["traceEvents"] if e.get("cat") == "round"
        ]
        assert len(rounds) >= 5
        with open(jsonl_path) as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[-1]["type"] == "metrics"

    def test_default_trace_path(self, sample_dir, capsys):
        code = main([
            "trace", "--data", sample_dir, "--partitions", "3",
            "--executor", "thread", "--max-workers", "2",
        ])
        assert code == 0
        assert os.path.exists(os.path.join(sample_dir, "trace.json"))


class TestDiagnose:
    def test_prints_table8(self, sample_dir, capsys):
        code = main(["diagnose", "--data", sample_dir, "--partitions", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Bwa" in out
        assert "Mark Duplicates" in out
        assert "Haplotype Caller" in out


class TestPerfStudy:
    @pytest.mark.parametrize("cluster", ["A", "B"])
    def test_prints_rounds(self, cluster, capsys):
        code = main(["perf-study", "--cluster", cluster])
        assert code == 0
        out = capsys.readouterr().out
        assert "Round 5" in out
        assert "TOTAL" in out


class TestChaosCli:
    def test_malformed_event_spec_names_field_and_grammar(
        self, sample_dir, capsys
    ):
        """Satellite regression: a malformed chaos spec exits 2 with an
        error naming the bad field and the accepted grammar — never a
        traceback."""
        code = main([
            "chaos", "--data", sample_dir, "--partitions", "4",
            "--preempt", "round1-alignment:map:two",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: bad --preempt event spec" in err
        assert "TASK must be an integer, got 'two'" in err
        assert "expected --preempt JOB[:WAVE[:TASK]]" in err

    def test_malformed_cold_start_spec(self, sample_dir, capsys):
        code = main([
            "chaos", "--data", sample_dir, "--partitions", "4",
            "--cold-start", "glacial",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "SECONDS must be a number, got 'glacial'" in err
        assert "expected --cold-start SECONDS[@JOB]" in err

    @needs_fork
    def test_preempt_and_cold_start_gate_passes(
        self, sample_dir, tmp_path, capsys
    ):
        """The acceptance drill: preemption + cold-start chaos under
        the pool executor must be absorbed — gate passes, workers
        respawn, a fenced backup commits."""
        import json

        report_path = str(tmp_path / "chaos.json")
        code = main([
            "chaos", "--data", sample_dir, "--partitions", "4",
            "--executor", "pool", "--max-workers", "2",
            "--preempt", "round2-cleaning:map:0",
            "--cold-start", "0.2@round4-sort",
            "--report-out", report_path,
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "GATE PASSED" in out
        assert "fault counters:" in out
        assert "pool.preemptions" in out
        assert "pool.cold_starts" in out
        with open(report_path) as handle:
            payload = json.load(handle)
        assert payload["gate"]["equivalent"] is True
        counters = payload["fault_counters"]
        assert counters["pool.preemptions"] == 1
        assert counters["pool.workers_respawned"] >= 1
        assert counters["pool.cold_starts"] >= 1
        absorption = payload["absorption"]
        assert sum(s["backups"] for s in absorption.values()) >= 1


class TestElasticTrace:
    @needs_fork
    def test_trace_prints_cost_model(self, sample_dir, capsys):
        code = main([
            "trace", "--data", sample_dir, "--partitions", "3",
            "--executor", "elastic", "--max-workers", "2",
            "--min-workers", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cost model (worker-seconds vs wall clock):" in out
        assert "billed" in out
        assert "static envelope" in out
        assert "scaling" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_missing_required_arg(self):
        with pytest.raises(SystemExit):
            main(["simulate"])

    def test_min_workers_above_max_rejected(self, sample_dir, capsys):
        code = main([
            "run", "--data", sample_dir, "--executor", "elastic",
            "--max-workers", "2", "--min-workers", "4",
        ])
        assert code == 2
        assert "min_workers must be <= max_workers" in \
            capsys.readouterr().err
