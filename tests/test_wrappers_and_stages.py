"""Tests for the wrapper adapters and the Table 2 stage catalog."""

import pytest

from repro.cleaning.clean_sam import CleanSam
from repro.formats.bam import read_bam
from repro.formats.fastq import FastqRecord
from repro.formats.sam import SamHeader
from repro.mapreduce.streaming import StreamingPipeline
from repro.pipeline.stages import TABLE2_STAGES, stage_by_name, total_pipeline_hours
from repro.wrappers.programs import (
    BwaExternal,
    DataTransformAccounting,
    SamToBamExternal,
    interleaved_text_to_pairs,
    pairs_to_interleaved_text,
    run_wrapped,
)


class TestInterleavedText:
    def test_roundtrip(self, pairs):
        subset = pairs[:10]
        text = pairs_to_interleaved_text(subset)
        parsed = interleaved_text_to_pairs(text)
        assert parsed == subset

    def test_malformed_rejected(self):
        from repro.errors import FormatError
        with pytest.raises(FormatError):
            interleaved_text_to_pairs("@only_one_line\n")


class TestBwaExternal:
    def test_emits_header_and_records(self, aligner, pairs):
        program = BwaExternal(aligner)
        out = program.process(pairs_to_interleaved_text(pairs[:5]).encode())
        lines = out.decode().rstrip("\n").split("\n")
        header_lines = [l for l in lines if l.startswith("@")]
        record_lines = [l for l in lines if not l.startswith("@")]
        assert any(l.startswith("@SQ") for l in header_lines)
        assert len(record_lines) == 10

    def test_pipes_into_samtobam(self, aligner, pairs):
        pipeline = StreamingPipeline([BwaExternal(aligner), SamToBamExternal()])
        bam_data = pipeline.run(pairs_to_interleaved_text(pairs[:5]).encode())
        header, records = read_bam(bam_data)
        assert len(records) == 10
        assert header.sequence_names()


class TestTransformAccounting:
    def test_bytes_counted_on_both_sides(self, sam_header, aligned):
        accounting = DataTransformAccounting()
        run_wrapped(CleanSam(), sam_header, aligned[:50], accounting)
        assert accounting.invocations == 1
        assert accounting.bytes_to_program > 0
        assert accounting.bytes_from_program > 0
        assert accounting.total_bytes == (
            accounting.bytes_to_program + accounting.bytes_from_program
        )

    def test_optional_accounting(self, sam_header, aligned):
        header, out = run_wrapped(CleanSam(), sam_header, aligned[:10], None)
        assert out


class TestStageCatalog:
    def test_ten_stages(self):
        assert len(TABLE2_STAGES) == 10
        assert [s.step for s in TABLE2_STAGES] == [
            "1", "2", "3", "4", "5", "6", "7", "8", "v1", "v2"
        ]

    def test_paper_text_anchors(self):
        assert stage_by_name("Clean Sam").single_server_hours == 7.55
        assert stage_by_name("Clean Sam").source == "paper-text"
        assert stage_by_name("Mark Duplicates").single_server_hours == pytest.approx(14.45, abs=0.01)

    def test_total_about_two_weeks(self):
        total_days = total_pipeline_hours() / 24.0
        assert 10 <= total_days <= 16

    def test_unknown_stage(self):
        with pytest.raises(KeyError):
            stage_by_name("Nope")
