"""Edge cases of the Hadoop Streaming emulation.

The happy path lives in test_mapreduce.py; these pin down boundary
behaviour the wrapper layer relies on: empty stdin, flush counting at
exact pipe-buffer multiples, and the byte accounting of multi-program
pipelines.
"""

from repro.mapreduce.streaming import (
    BytesOutputReader,
    ExternalProgram,
    StreamingPipeline,
    TextInputWriter,
)


class Upper(ExternalProgram):
    name = "upper"

    def process(self, stdin: bytes) -> bytes:
        return stdin.upper()


class Doubler(ExternalProgram):
    name = "doubler"

    def process(self, stdin: bytes) -> bytes:
        return stdin + stdin


class Sink(ExternalProgram):
    name = "sink"

    def process(self, stdin: bytes) -> bytes:
        return b""


class TestEmptyStdin:
    def test_empty_stdin_flows_through_every_program(self):
        pipeline = StreamingPipeline([Upper(), Doubler()])
        assert pipeline.run(b"") == b""
        # Every stage still ran (a real fork would too) and its pipe
        # accounting records the zero transfers.
        assert pipeline.stats.programs == ["upper", "doubler"]
        assert pipeline.stats.bytes_in == [0, 0]
        assert pipeline.stats.bytes_out == [0, 0]
        assert pipeline.stats.total_transferred() == 0

    def test_program_may_produce_output_from_empty_stdin(self):
        class Banner(ExternalProgram):
            name = "banner"

            def process(self, stdin: bytes) -> bytes:
                return b"header\n" + stdin

        pipeline = StreamingPipeline([Banner()])
        assert pipeline.run(b"") == b"header\n"
        assert pipeline.stats.bytes_in == [0]
        assert pipeline.stats.bytes_out == [7]

    def test_writer_and_reader_agree_on_empty(self):
        assert TextInputWriter().encode([]) == b""
        assert BytesOutputReader().decode(b"") == []


class TestPipeFlushRounding:
    def test_zero_bytes_need_no_flush(self):
        pipeline = StreamingPipeline([Upper()], pipe_buffer_bytes=64)
        assert pipeline.pipe_flushes(0) == 0

    def test_exact_multiples_do_not_round_up(self):
        pipeline = StreamingPipeline([Upper()], pipe_buffer_bytes=64)
        assert pipeline.pipe_flushes(64) == 1
        assert pipeline.pipe_flushes(128) == 2
        assert pipeline.pipe_flushes(64 * 10) == 10

    def test_partial_buffer_still_flushes(self):
        pipeline = StreamingPipeline([Upper()], pipe_buffer_bytes=64)
        assert pipeline.pipe_flushes(1) == 1
        assert pipeline.pipe_flushes(63) == 1
        assert pipeline.pipe_flushes(65) == 2
        assert pipeline.pipe_flushes(129) == 3


class TestMultiProgramAccounting:
    def test_total_transferred_sums_every_pipe_side(self):
        pipeline = StreamingPipeline([Upper(), Doubler(), Sink()])
        out = pipeline.run(b"acgt")
        assert out == b""
        stats = pipeline.stats
        # upper: 4 in / 4 out; doubler: 4 in / 8 out; sink: 8 in / 0 out.
        assert stats.bytes_in == [4, 4, 8]
        assert stats.bytes_out == [4, 8, 0]
        assert stats.total_transferred() == 4 + 4 + 4 + 8 + 8 + 0

    def test_stats_replaced_per_run_not_accumulated(self):
        pipeline = StreamingPipeline([Doubler()])
        pipeline.run(b"xy")
        first = pipeline.stats
        pipeline.run(b"abcd")
        assert pipeline.stats is not first
        assert pipeline.stats.bytes_in == [4]
        assert pipeline.stats.bytes_out == [8]
        assert first.bytes_in == [2]

    def test_repr_names_every_stage(self):
        pipeline = StreamingPipeline([Upper(), Doubler()])
        pipeline.run(b"aa")
        text = repr(pipeline.stats)
        assert "upper(2B->2B)" in text
        assert "doubler(2B->4B)" in text
