"""Unit tests for the aligner stack: SW kernels, index, candidates,
pairing, and the batch-dependence artifacts."""

import pytest

from repro.align.aligner import AlignerConfig, BwaMemLite
from repro.align.index import ReferenceIndex
from repro.align.pairing import (
    InsertSizeEstimate,
    PairedEndAligner,
    _fr_insert_size,
    _stable_batch_seed,
)
from repro.align.sw import (
    align_candidate,
    banded_local_alignment,
    ungapped_alignment,
)
from repro.errors import AlignmentError
from repro.formats.fastq import FastqRecord
from repro.genome.reference import ReferenceGenome, reverse_complement
from repro.genome.simulate import ReadSimulationConfig, simulate_reads


class TestUngapped:
    def test_perfect_match(self):
        result = ungapped_alignment("ACGT", "TTACGTTT", 2, max_mismatches=0)
        assert result is not None
        assert result.score == 4
        assert str(result.cigar) == "4M"
        assert result.ref_offset == 2

    def test_mismatch_scoring(self):
        result = ungapped_alignment("ACGT", "TTACCTTT", 2, max_mismatches=2)
        assert result is not None
        assert result.mismatches == 1
        assert result.score == 3 * 1 + 1 * (-4)

    def test_exceeds_mismatch_budget(self):
        assert ungapped_alignment("AAAA", "TTTTTTTT", 2, max_mismatches=2) is None

    def test_out_of_window(self):
        assert ungapped_alignment("ACGT", "ACG", 0, max_mismatches=0) is None
        assert ungapped_alignment("ACGT", "AACGT", -1, max_mismatches=0) is None


class TestBandedLocal:
    def test_exact_match(self):
        result = banded_local_alignment("ACGTACGT", "TTACGTACGTTT")
        assert result is not None
        assert result.cigar.query_length() == 8

    def test_detects_deletion(self):
        # Long flanks make bridging the 2-base deletion worth the gap
        # penalty (with short flanks a local aligner correctly clips).
        left, right = "ACGTAGGCTAAC" * 2, "TGCATCCGATTG" * 2
        window = "GG" + left + "TT" + right + "GG"
        result = banded_local_alignment(left + right, window)
        assert result is not None
        assert any(op == "D" for _, op in result.cigar)

    def test_detects_insertion(self):
        left, right = "ACGTAGGCTAAC" * 2, "TGCATCCGATTG" * 2
        window = "GG" + left + right + "GG"
        result = banded_local_alignment(left + "TT" + right, window)
        assert result is not None
        assert any(op == "I" for _, op in result.cigar)

    def test_soft_clips_unaligned_ends(self):
        result = banded_local_alignment("TTTTACGTACGTACGT", "ACGTACGTACGTGGGG")
        assert result is not None
        assert result.cigar.leading_clip() > 0

    def test_empty_inputs(self):
        assert banded_local_alignment("", "ACGT") is None
        assert banded_local_alignment("ACGT", "") is None

    def test_align_candidate_falls_back_to_banded(self):
        # Placement with an insertion: ungapped fails, banded succeeds.
        left, right = "ACGTAGGCTAAC" * 2, "TGCATCCGATTG" * 2
        window = "GG" + left + right + "GG"
        result = align_candidate(
            left + "C" + right, window, 2, max_ungapped_mismatches=1
        )
        assert result is not None
        assert any(op == "I" for _, op in result.cigar)


class TestIndex:
    def test_lookup_finds_planted_kmer(self):
        seq = "ACGT" * 30
        genome = ReferenceGenome({"chr1": seq})
        index = ReferenceIndex(genome, k=8, max_hits_per_kmer=200)
        hits = index.lookup(seq[:8])
        assert ("chr1", 1) in hits

    def test_repetitive_kmers_dropped(self):
        genome = ReferenceGenome({"chr1": "A" * 500})
        index = ReferenceIndex(genome, k=8, max_hits_per_kmer=16)
        assert index.lookup("A" * 8) == []
        assert index.is_repetitive("A" * 8)

    def test_wrong_query_length_rejected(self, ref_index):
        with pytest.raises(AlignmentError):
            ref_index.lookup("ACGT")

    def test_seed_read_offsets(self, ref_index, reference):
        read = reference.fetch("chr1", 501, 601)
        seeds = list(ref_index.seed_read(read, stride=10))
        assert any(
            hit == ("chr1", 501 + offset) for offset, hit in seeds
        )

    def test_too_small_k_rejected(self, reference):
        with pytest.raises(AlignmentError):
            ReferenceIndex(reference, k=2)


class TestSingleEndAligner:
    def test_planted_read_found(self, ref_index, reference):
        read = reference.fetch("chr1", 801, 901)
        aligner = BwaMemLite(ref_index)
        candidates = aligner.candidates(read)
        assert candidates
        assert candidates[0].contig == "chr1"
        assert candidates[0].pos == 801

    def test_reverse_strand_found(self, ref_index, reference):
        read = reverse_complement(reference.fetch("chr1", 801, 901))
        aligner = BwaMemLite(ref_index)
        candidates = aligner.candidates(read)
        assert candidates
        assert candidates[0].reverse
        assert candidates[0].pos == 801

    def test_garbage_read_unmapped(self, ref_index):
        aligner = BwaMemLite(ref_index)
        # Low-complexity junk not in this genome.
        assert aligner.candidates("ACACACAC" * 12 + "ACAC") == []

    def test_mapq_unique_hit_is_60(self, ref_index, reference):
        read = reference.fetch("chr1", 801, 901)
        aligner = BwaMemLite(ref_index)
        candidates = aligner.candidates(read)
        if len(candidates) == 1:
            assert aligner.mapq(candidates) == 60

    def test_mapq_tie_is_zero(self, ref_index):
        aligner = BwaMemLite(ref_index)
        from repro.align.aligner import AlignmentCandidate
        from repro.formats.cigar import Cigar
        ties = [
            AlignmentCandidate("chr1", 10, False, 90, Cigar.parse("100M"), 2),
            AlignmentCandidate("chr1", 500, False, 90, Cigar.parse("100M"), 2),
        ]
        assert aligner.mapq(ties) == 0

    def test_mapq_empty(self, ref_index):
        assert BwaMemLite(ref_index).mapq([]) == 0


class TestInsertSize:
    def test_estimate_z(self):
        estimate = InsertSizeEstimate(300.0, 30.0, 100)
        assert estimate.z(300) == 0.0
        assert estimate.z(390) == pytest.approx(3.0)

    def test_sd_floor(self):
        assert InsertSizeEstimate(300.0, 0.0, 5).sd == 1.0

    def test_fr_insert_size(self):
        from repro.align.aligner import AlignmentCandidate
        from repro.formats.cigar import Cigar
        fwd = AlignmentCandidate("chr1", 100, False, 100, Cigar.parse("100M"), 0)
        rev = AlignmentCandidate("chr1", 300, True, 100, Cigar.parse("100M"), 0)
        assert _fr_insert_size(fwd, rev) == 300 + 99 - 100 + 1

    def test_fr_requires_opposite_strands(self):
        from repro.align.aligner import AlignmentCandidate
        from repro.formats.cigar import Cigar
        a = AlignmentCandidate("chr1", 100, False, 100, Cigar.parse("100M"), 0)
        b = AlignmentCandidate("chr1", 300, False, 100, Cigar.parse("100M"), 0)
        assert _fr_insert_size(a, b) is None

    def test_fr_requires_same_contig(self):
        from repro.align.aligner import AlignmentCandidate
        from repro.formats.cigar import Cigar
        a = AlignmentCandidate("chr1", 100, False, 100, Cigar.parse("100M"), 0)
        b = AlignmentCandidate("chr2", 300, True, 100, Cigar.parse("100M"), 0)
        assert _fr_insert_size(a, b) is None


class TestPairedAligner:
    def test_two_records_per_pair_in_order(self, aligner, pairs):
        records = aligner.align_batch(pairs[:20])
        assert len(records) == 40
        for i, pair in enumerate(pairs[:20]):
            assert records[2 * i].qname == pair[0].name[:-2]
            assert records[2 * i].flags.is_first_in_pair
            assert records[2 * i + 1].flags.is_second_in_pair

    def test_most_reads_mapped(self, aligned):
        mapped = sum(1 for r in aligned if r.is_mapped)
        assert mapped / len(aligned) > 0.80

    def test_proper_pairs_have_fr_orientation(self, aligned):
        by_name = {}
        for record in aligned:
            by_name.setdefault(record.qname, []).append(record)
        checked = 0
        for ends in by_name.values():
            if len(ends) == 2 and all(
                e.flags.is_proper_pair and e.is_mapped for e in ends
            ):
                strands = {e.flags.is_reverse for e in ends}
                assert strands == {True, False}
                checked += 1
        assert checked > 50

    def test_tlen_signs_balance(self, aligned):
        proper = [r for r in aligned if r.flags.is_proper_pair and r.tlen != 0]
        assert sum(r.tlen for r in proper) == 0

    def test_unmapped_mate_placed_at_mapped_position(self, aligner, ref_index,
                                                     reference):
        good = reference.fetch("chr1", 1001, 1101)
        junk = "ACAC" * 25
        pair = (
            FastqRecord("p/1", good, [35] * 100),
            FastqRecord("p/2", junk, [35] * 100),
        )
        records = aligner.align_batch([pair])
        mapped = [r for r in records if r.is_mapped]
        unmapped = [r for r in records if not r.is_mapped]
        assert len(mapped) == 1 and len(unmapped) == 1
        assert unmapped[0].pos == mapped[0].pos
        assert unmapped[0].flags.is_unmapped
        assert mapped[0].flags.is_mate_unmapped

    def test_batch_determinism(self, aligner, pairs):
        a = aligner.align_batch(pairs[:50])
        b = aligner.align_batch(pairs[:50])
        assert [r.to_line() for r in a] == [r.to_line() for r in b]

    def test_partitioning_changes_some_results(self, aligner, pairs):
        """The paper's core accuracy finding: Bwa is not embarrassingly
        parallel — different batch boundaries yield different output."""
        whole = aligner.align_batch(pairs[:300])
        split = aligner.align_batch(pairs[:150]) + aligner.align_batch(pairs[150:300])
        whole_sig = {
            (r.qname, r.flags.is_first_in_pair): (r.rname, r.pos, str(r.cigar))
            for r in whole
        }
        split_sig = {
            (r.qname, r.flags.is_first_in_pair): (r.rname, r.pos, str(r.cigar))
            for r in split
        }
        assert whole_sig.keys() == split_sig.keys()
        differing = sum(
            1 for key in whole_sig if whole_sig[key] != split_sig[key]
        )
        assert differing > 0
        # ... but the difference is a small fraction of all reads.
        assert differing / len(whole_sig) < 0.25

    def test_stable_batch_seed_depends_on_content(self, pairs):
        assert _stable_batch_seed(1, pairs[:10]) != _stable_batch_seed(1, pairs[:11])
        assert _stable_batch_seed(1, pairs[:10]) == _stable_batch_seed(1, pairs[:10])
        assert _stable_batch_seed(1, []) == 1

    def test_seq_stored_forward_reference_strand(self, aligner, reference,
                                                 donor):
        # A reverse-strand record's SEQ must equal the reference-forward
        # sequence, i.e. the reverse complement of the raw read.
        small_pairs, _ = simulate_reads(
            donor, ReadSimulationConfig(coverage=1.0, seed=55,
                                        base_error_rate=0.0)
        )
        records = aligner.align_batch(small_pairs[:40])
        raw = {}
        for fwd, rev in small_pairs[:40]:
            raw[(fwd.name[:-2], True)] = fwd.sequence
            raw[(rev.name[:-2], False)] = rev.sequence
        for record in records:
            if not record.is_mapped or record.mapq < 60:
                continue
            key = (record.qname, record.flags.is_first_in_pair)
            if record.flags.is_reverse:
                assert record.seq == reverse_complement(raw[key])
            else:
                assert record.seq == raw[key]
