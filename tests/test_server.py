"""Tests for the multi-tenant job service (``repro.server``).

The acceptance drill lives in :class:`TestKillResume`: two tenants
with weights 2:1 submitting jobs see a pinned deterministic
fair-share interleaving, an over-quota submission is a typed
rejection, and a server killed mid-queue resumes with no job lost or
duplicated — byte-identical results and identical dispatch order vs
an uninterrupted run.
"""

import os
import pickle
import socket
import tempfile
import threading

import pytest

from repro.chaos.plan import FaultPlan, KillServer, parse_event
from repro.errors import (
    AdmissionError,
    JobNotFoundError,
    MapReduceError,
    ServerError,
    ServerKilledError,
)
from repro.pipeline.checkpoint import LocalDirectoryBackend
from repro.pipeline.wal import FrameLog
from repro.server import (
    AdmissionController,
    DurableJobQueue,
    FairShareScheduler,
    JobServer,
    ServerConfig,
    TenantPolicy,
)
from repro.server.protocol import wordcount_payload
from repro.server.queue import QueuedJob

needs_af_unix = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="unix sockets unavailable"
)

LINES = [
    "the quick brown fox",
    "jumps over the lazy dog",
    "the dog barks twice",
]

WEIGHTED = (
    TenantPolicy("a", weight=2.0),
    TenantPolicy("b", weight=1.0),
)


def make_server(state_dir, plan=None, hold=True, slots=1, tenants=WEIGHTED,
                **kwargs):
    server = JobServer(ServerConfig(
        state_dir=state_dir, total_slots=slots, tenants=tenants,
        hold=hold, fault_plan=plan, **kwargs,
    ))
    server.open()
    return server


def submit_batch(server, per_tenant=6):
    for index in range(per_tenant):
        for tenant in ("a", "b"):
            server.submit(
                tenant, wordcount_payload(LINES),
                job_id=f"{tenant}{index}",
            )


def dispatch_order(server):
    jobs = server.jobs_snapshot()["jobs"]
    started = [j for j in jobs if j["start_seq"]]
    return [j["job_id"] for j in sorted(started,
                                        key=lambda j: j["start_seq"])]


class TestFrameLog:
    def test_reset_append_replay(self, tmp_path):
        backend = LocalDirectoryBackend(str(tmp_path))
        log = FrameLog(backend, "q.log", "fp")
        log.reset()
        log.append({"n": 1})
        log.append({"n": 2})
        assert FrameLog(backend, "q.log", "fp").replay() == [
            {"n": 1}, {"n": 2}
        ]

    def test_foreign_fingerprint_replays_empty(self, tmp_path):
        backend = LocalDirectoryBackend(str(tmp_path))
        log = FrameLog(backend, "q.log", "fp")
        log.reset()
        log.append({"n": 1})
        assert FrameLog(backend, "q.log", "other").replay() == []

    def test_torn_tail_tolerated(self, tmp_path):
        backend = LocalDirectoryBackend(str(tmp_path))
        log = FrameLog(backend, "q.log", "fp")
        log.reset()
        log.append({"n": 1})
        backend.append("q.log", b"\x00\x00\x01\xffgarbage")
        assert log.replay() == [{"n": 1}]

    def test_missing_log_replays_empty(self, tmp_path):
        backend = LocalDirectoryBackend(str(tmp_path))
        assert FrameLog(backend, "absent.log", "fp").replay() == []


class TestDurableJobQueue:
    def _queue(self, tmp_path):
        return DurableJobQueue(LocalDirectoryBackend(str(tmp_path)))

    def test_submit_and_terminal_states_survive_reopen(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.open()
        job = queue.submit("j1", "a", {"type": "x"}, 1.0, 1)
        queue.mark_started(job)
        queue.mark_done(job, pickle.dumps([1, 2]), 0.5)
        job2 = queue.submit("j2", "a", {"type": "x"}, 1.0, 1)
        queue.mark_started(job2)
        queue.mark_failed(job2, "boom")

        reopened = self._queue(tmp_path)
        assert reopened.open() == []
        assert reopened.get("j1").state == "done"
        assert pickle.loads(reopened.get("j1").result_blob) == [1, 2]
        assert reopened.get("j2").state == "failed"
        assert reopened.get("j2").error == "boom"

    def test_inflight_job_readmitted_as_pending(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.open()
        job = queue.submit("j1", "a", {"type": "x"}, 2.0, 1)
        queue.mark_started(job)

        reopened = self._queue(tmp_path)
        readmitted = reopened.open()
        assert [j.job_id for j in readmitted] == ["j1"]
        back = reopened.get("j1")
        assert back.state == "pending"
        assert back.resubmitted
        assert back.start_seq == 0
        assert back.cost == 2.0

    def test_compaction_heals_torn_tail(self, tmp_path):
        backend = LocalDirectoryBackend(str(tmp_path))
        queue = DurableJobQueue(backend)
        queue.open()
        queue.submit("j1", "a", {"type": "x"}, 1.0, 1)
        backend.append("queue.log", b"torn-frame-bytes")

        reopened = DurableJobQueue(backend)
        reopened.open()
        # Appends after the (healed) recovery must be replayable.
        reopened.submit("j2", "a", {"type": "x"}, 1.0, 1)
        third = DurableJobQueue(backend)
        third.open()
        assert sorted(third.jobs) == ["j1", "j2"]

    def test_duplicate_job_id_rejected(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.open()
        queue.submit("j1", "a", {"type": "x"}, 1.0, 1)
        with pytest.raises(ServerError, match="duplicate job id"):
            queue.submit("j1", "b", {"type": "x"}, 1.0, 1)

    def test_unknown_job_id(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.open()
        with pytest.raises(JobNotFoundError):
            queue.get("nope")


class TestTenantPolicy:
    def test_bad_name_rejected(self):
        with pytest.raises(ServerError, match="bad tenant name"):
            TenantPolicy(name="a.b")

    def test_bad_weight_rejected(self):
        with pytest.raises(ServerError, match="weight must be > 0"):
            TenantPolicy(name="a", weight=0.0)


class TestAdmission:
    def test_queued_jobs_quota(self):
        control = AdmissionController((TenantPolicy("a", max_queued=2),))
        control.check_submit("a", 1.0, {"a": 1}, {}, 1)
        with pytest.raises(AdmissionError) as excinfo:
            control.check_submit("a", 1.0, {"a": 2}, {}, 2)
        exc = excinfo.value
        assert exc.tenant == "a"
        assert exc.reason == "queued_jobs"
        assert exc.limit == 2
        assert exc.observed == 3

    def test_cost_units_quota_counts_committed_cost(self):
        control = AdmissionController(
            (TenantPolicy("a", max_cost_units=5.0),)
        )
        control.check_submit("a", 2.0, {}, {"a": 3.0}, 0)
        with pytest.raises(AdmissionError) as excinfo:
            control.check_submit("a", 2.5, {}, {"a": 3.0}, 0)
        assert excinfo.value.reason == "cost_units"

    def test_total_backstop(self):
        control = AdmissionController(max_queued_total=1)
        with pytest.raises(AdmissionError) as excinfo:
            control.check_submit("a", 1.0, {}, {}, 1)
        assert excinfo.value.reason == "total_queued"

    def test_unknown_tenant_minted_from_default(self):
        control = AdmissionController(
            default=TenantPolicy("default", max_queued=1)
        )
        policy = control.policy("newcomer")
        assert policy.name == "newcomer"
        assert policy.max_queued == 1

    def test_bad_tenant_name_is_admission_error(self):
        control = AdmissionController()
        with pytest.raises(AdmissionError) as excinfo:
            control.check_submit("no/slash", 1.0, {}, {}, 0)
        assert excinfo.value.reason == "bad_tenant"


class TestFairShareScheduler:
    def _job(self, job_id, tenant, cost=1.0, demand=1, seq=0):
        return QueuedJob(job_id, tenant, {}, cost, demand, seq)

    def test_min_share_beats_weighted_share(self):
        control = AdmissionController((
            TenantPolicy("a", weight=1.0),
            TenantPolicy("b", weight=1.0, min_share=1),
        ))
        sched = FairShareScheduler(4, control)
        sched.charged["a"] = 0.0
        sched.charged["b"] = 100.0
        pending = {"a": [self._job("a0", "a")], "b": [self._job("b0", "b")]}
        assert sched.pick(pending).job_id == "b0"

    def test_demand_too_large_skipped(self):
        control = AdmissionController()
        sched = FairShareScheduler(2, control)
        pending = {
            "a": [self._job("a0", "a", demand=3)],
            "b": [self._job("b0", "b", demand=1)],
        }
        assert sched.pick(pending).job_id == "b0"

    def test_ties_break_lexicographically(self):
        control = AdmissionController()
        sched = FairShareScheduler(2, control)
        pending = {"z": [self._job("z0", "z")], "m": [self._job("m0", "m")]}
        assert sched.pick(pending).job_id == "m0"


class TestFairShareInterleaving:
    def test_pinned_2_to_1_dispatch_order(self, tmp_path):
        """Weights 2:1, six jobs each, one slot: the dispatch sequence
        is pinned — charge-at-dispatch makes it independent of job
        runtimes and thread timing."""
        server = make_server(str(tmp_path))
        submit_batch(server, per_tenant=6)
        server.start_dispatch()
        server.drain()
        server.close()
        order = dispatch_order(server)
        tenants = [job_id[0] for job_id in order]
        assert tenants == list("abaabaababbb")
        # FIFO within each tenant.
        assert [j for j in order if j.startswith("a")] == [
            f"a{i}" for i in range(6)
        ]
        assert [j for j in order if j.startswith("b")] == [
            f"b{i}" for i in range(6)
        ]

    def test_results_and_counters(self, tmp_path):
        server = make_server(str(tmp_path))
        submit_batch(server, per_tenant=2)
        server.start_dispatch()
        server.drain()
        server.close()
        expected = sorted([
            ("barks", 1), ("brown", 1), ("dog", 2), ("fox", 1),
            ("jumps", 1), ("lazy", 1), ("over", 1), ("quick", 1),
            ("the", 3), ("twice", 1),
        ])
        assert server.result("a0") == expected
        counters = server.counters()
        assert counters["server.admitted"] == 4
        assert counters["server.completed"] == 4
        assert counters["server.tenant.a.paid_worker_seconds"] > 0
        assert counters["server.tenant.b.completed"] == 2


class TestAdmissionInServer:
    def test_over_quota_is_typed_not_queued(self, tmp_path):
        server = make_server(
            str(tmp_path),
            tenants=(TenantPolicy("a", max_cost_units=3.0),),
        )
        for _ in range(3):
            server.submit("a", wordcount_payload(LINES))
        with pytest.raises(AdmissionError) as excinfo:
            server.submit("a", wordcount_payload(LINES))
        server.close()
        exc = excinfo.value
        assert (exc.reason, exc.limit, exc.observed) == (
            "cost_units", 3.0, 4.0
        )
        assert server.counters()["server.rejected"] == 1
        assert server.counters()["server.tenant.a.rejected"] == 1
        assert len(server.jobs_snapshot()["jobs"]) == 3

    def test_bad_payload_rejected_at_submit(self, tmp_path):
        server = make_server(str(tmp_path))
        with pytest.raises(ServerError, match="non-empty 'lines'"):
            server.submit("a", {"type": "wordcount", "lines": []})
        server.close()

    def test_demand_above_slots_rejected(self, tmp_path):
        server = make_server(str(tmp_path), slots=2)
        with pytest.raises(ServerError, match="slot budget"):
            server.submit("a", wordcount_payload(LINES), demand=3)
        server.close()

    def test_failed_job_is_terminal_not_fatal(self, tmp_path):
        server = make_server(str(tmp_path))
        # Integer "lines" pass payload validation's list check but
        # blow up inside the mapper — the job fails, the server lives.
        server.submit("a", {"type": "wordcount", "lines": [1, 2]},
                      job_id="bad")
        server.submit("a", wordcount_payload(LINES), job_id="good")
        server.start_dispatch()
        server.drain()
        server.close()
        assert server.queue.get("bad").state == "failed"
        assert server.queue.get("good").state == "done"
        with pytest.raises(ServerError, match="failed"):
            server.result("bad")


class TestCancel:
    def test_cancel_pending_job(self, tmp_path):
        server = make_server(str(tmp_path))
        server.submit("a", wordcount_payload(LINES), job_id="a0")
        assert server.cancel("a0") == "cancelled"
        server.start_dispatch()
        server.drain()
        server.close()
        assert server.queue.get("a0").state == "cancelled"

    def test_cancel_terminal_job_is_noop(self, tmp_path):
        server = make_server(str(tmp_path), hold=False)
        server.submit("a", wordcount_payload(LINES), job_id="a0")
        server.drain()
        assert server.cancel("a0") == "done"
        server.close()

    def test_cancelled_job_survives_restart(self, tmp_path):
        server = make_server(str(tmp_path))
        server.submit("a", wordcount_payload(LINES), job_id="a0")
        server.cancel("a0")
        server.close()
        reopened = make_server(str(tmp_path))
        assert reopened.queue.get("a0").state == "cancelled"
        reopened.close()


class TestKillResume:
    """The acceptance drill: killed mid-queue, resumed, byte-identical."""

    def test_kill_mid_queue_resumes_without_loss_or_duplication(
        self, tmp_path
    ):
        baseline_dir = str(tmp_path / "baseline")
        killed_dir = str(tmp_path / "killed")

        # Uninterrupted run: 3 jobs per tenant, weights 2:1.
        baseline = make_server(baseline_dir)
        submit_batch(baseline, per_tenant=3)
        baseline.start_dispatch()
        baseline.drain()
        baseline.close()
        base_order = dispatch_order(baseline)
        assert [j[0] for j in base_order] == list("abaabb")
        base_blobs = {
            job_id: baseline.queue.get(job_id).result_blob
            for job_id in base_order
        }

        # Killed run: same submissions, crash after the 3rd dispatch.
        plan = FaultPlan(events=(KillServer(after_starts=3),))
        killed = make_server(killed_dir, plan=plan)
        submit_batch(killed, per_tenant=3)
        killed.start_dispatch()
        with pytest.raises(ServerKilledError, match="journaled but "
                                                    "never run"):
            killed.drain()
        killed.close()
        assert killed.queue.counts()["done"] == 2

        # Restart over the same state dir: the in-flight job is
        # re-admitted, nothing is lost, nothing re-runs.
        resumed = make_server(killed_dir, hold=False)
        resumed.drain()
        resumed.close()
        order = dispatch_order(resumed)
        assert order == base_order
        assert resumed.queue.counts()["done"] == 6
        blobs = {
            job_id: resumed.queue.get(job_id).result_blob
            for job_id in order
        }
        assert blobs == base_blobs  # byte-identical results
        starts = [resumed.queue.get(j).start_seq for j in order]
        assert len(set(starts)) == 6  # no duplicated dispatch
        assert resumed.counters()["server.resumed"] == 1

    def test_kill_server_event_validation(self):
        with pytest.raises(MapReduceError, match="after_starts"):
            FaultPlan(events=(KillServer(after_starts=0),))

    def test_parse_kill_server_spec(self):
        event = parse_event("4", "kill-server")
        assert event == KillServer(after_starts=4)
        with pytest.raises(MapReduceError, match="STARTS"):
            parse_event("soon", "kill-server")


@needs_af_unix
class TestDaemonRoundTrip:
    @pytest.fixture()
    def served(self, tmp_path):
        from repro.server.daemon import JobServerDaemon

        # Socket paths have a ~100 char limit; tmp_path can exceed it.
        sock_dir = tempfile.mkdtemp(prefix="repro-srv-")
        socket_path = os.path.join(sock_dir, "s.sock")
        server = JobServer(ServerConfig(
            state_dir=str(tmp_path / "state"), total_slots=1,
            tenants=(TenantPolicy("a", weight=2.0, max_queued=4),),
        ))
        server.open()
        daemon = JobServerDaemon(server, socket_path)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        yield server, socket_path
        daemon.request_shutdown()
        thread.join(timeout=5)
        server.close()

    def _client(self, socket_path):
        from repro.server.client import JobClient

        client = JobClient(socket_path, timeout=10.0)
        client.wait_ready()
        return client

    def test_submit_jobs_result_cancel(self, served):
        _, socket_path = served
        client = self._client(socket_path)
        job_id = client.submit("a", wordcount_payload(["x y x"]))
        snapshot = client.wait_idle()
        assert snapshot["counts"]["done"] == 1
        assert client.result(job_id) == [["x", 2], ["y", 1]]
        with pytest.raises(JobNotFoundError):
            client.cancel("missing")
        stats = client.stats()
        assert stats["tenants"]["a"]["completed"] == 1

    def test_admission_error_keeps_fields_over_the_wire(self, served):
        _, socket_path = served
        client = self._client(socket_path)
        for _ in range(4):
            client.submit("a", wordcount_payload(["x"]))
        client.wait_idle()
        # max_queued=4 counts only live jobs; exhaust with held cost.
        with pytest.raises(AdmissionError) as excinfo:
            client.submit("a", wordcount_payload(["x"]), cost=-1.0)
        assert excinfo.value.reason == "bad_cost"

    def test_unknown_op_is_typed(self, served):
        _, socket_path = served
        client = self._client(socket_path)
        with pytest.raises(ServerError, match="unknown op"):
            client._request({"op": "bogus"})


class TestConcurrentEngines:
    """Satellite: two engines in one process, interleaved in threads,
    must match their serial baselines byte for byte — the precondition
    the shared-executor scheduler relies on."""

    def _spec_and_splits(self, name, lines):
        from repro.api import JobSpec, make_block_splits
        from repro.mapreduce.policy import ExecutionPolicy
        from repro.server.protocol import wordcount_map, wordcount_reduce

        spec = JobSpec(
            name=name, mapper=wordcount_map, reducer=wordcount_reduce,
            num_reducers=2, policy=ExecutionPolicy.threads(max_workers=2),
        )
        splits = make_block_splits(
            [lines[::2], lines[1::2]], prefix=name
        )
        return spec, splits

    def test_interleaved_run_job_byte_identical_vs_serial(self):
        from repro.api import run_job
        from repro.mapreduce.engine import MapReduceEngine

        corpus = {
            "job-x": LINES * 4,
            "job-y": ["alpha beta", "beta gamma delta", "alpha"] * 4,
        }
        baselines = {}
        for name, lines in corpus.items():
            spec, splits = self._spec_and_splits(name, lines)
            baselines[name] = pickle.dumps(
                sorted(run_job(spec, splits).all_outputs())
            )

        barrier = threading.Barrier(2)
        outputs = {}
        errors = []

        def work(name, lines):
            try:
                spec, splits = self._spec_and_splits(name, lines)
                engine = MapReduceEngine(policy=spec.policy)
                barrier.wait(timeout=10)
                try:
                    result = run_job(spec, splits, engine=engine)
                    outputs[name] = pickle.dumps(
                        sorted(result.all_outputs())
                    )
                finally:
                    engine.close()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(name, lines))
            for name, lines in corpus.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert outputs == baselines


class TestTenantObservability:
    def test_tenant_summary_parses_server_counters(self):
        from repro.obs.analysis import tenant_summary

        counters = {
            "server.tenant.a.admitted": 3,
            "server.tenant.a.paid_worker_seconds": 1.5,
            "server.tenant.b.rejected": 1,
            "server.admitted": 3,
            "pool.paid_worker_seconds": 9.0,
        }
        summary = tenant_summary(counters)
        assert sorted(summary) == ["a", "b"]
        assert summary["a"]["admitted"] == 3
        assert summary["a"]["paid_worker_seconds"] == 1.5
        assert summary["a"]["rejected"] == 0.0
        assert summary["b"]["rejected"] == 1

    def test_report_grows_tenant_section(self, tmp_path):
        from repro.obs.report import render_html_report

        server = make_server(str(tmp_path), hold=False)
        server.submit("a", wordcount_payload(LINES))
        server.drain()
        server.close()
        html = render_html_report(server.recorder)
        assert "<h2>Tenants</h2>" in html
        assert "<td>a</td>" in html

    def test_trace_spans_carry_tenant_track(self, tmp_path):
        server = make_server(str(tmp_path), hold=False)
        server.submit("a", wordcount_payload(LINES), job_id="a0")
        server.drain()
        server.close()
        spans = [s for s in server.recorder.spans()
                 if s.category == "server-job"]
        assert len(spans) == 1
        assert spans[0].track == "tenant/a"
        assert spans[0].attrs["start_seq"] == 1


class TestElasticPolicyValidation:
    """Satellite: min/max worker contradictions fail at construction."""

    def test_explicit_pair_rejected_naming_both_fields(self):
        from repro.mapreduce.policy import ExecutionPolicy

        with pytest.raises(MapReduceError) as excinfo:
            ExecutionPolicy.elastic(max_workers=2, min_workers=4)
        message = str(excinfo.value)
        assert "min_workers" in message and "max_workers" in message

    def test_elastic_floor_above_default_cap_rejected(self):
        from repro.mapreduce.policy import ExecutionPolicy

        # The default ceiling is min(32, cpu_count), so a floor of 64
        # can never be honoured on any host.
        with pytest.raises(MapReduceError) as excinfo:
            ExecutionPolicy.elastic(min_workers=64)
        message = str(excinfo.value)
        assert "min_workers" in message and "max_workers" in message
        assert "explicitly" in message

    def test_explicit_ceiling_raises_the_cap(self):
        from repro.mapreduce.policy import ExecutionPolicy

        policy = ExecutionPolicy.elastic(max_workers=64, min_workers=64)
        assert policy.resolved_min_workers() == 64
