"""Property-based tests (hypothesis) for core invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cleaning.sort import ExternalMergeSorter, queryname_key
from repro.formats import flags as F
from repro.formats.bam import bam_bytes, read_bam
from repro.formats.cigar import Cigar, unclipped_five_prime
from repro.formats.sam import SamHeader, SamRecord, decode_quals, encode_quals
from repro.gdpt.bloom import BloomFilter
from repro.gdpt.partitioner import (
    GroupPartitioner,
    split_pairs_contiguously,
    verify_group_partitioning,
)
from repro.genome.reference import reverse_complement
from repro.genome.regions import tile_contig
from repro.hdfs.bam_storage import read_distributed_bam, upload_bam
from repro.hdfs.filesystem import Hdfs
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import JobConf, make_splits

# -- strategies -------------------------------------------------------------

cigar_ops = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=50),
        st.sampled_from("MIDS"),
    ),
    min_size=1,
    max_size=6,
)


def normalise_ops(ops):
    """Make ops a plausible CIGAR: clips only at the ends, has an M."""
    middle = [(length, op) for length, op in ops if op != "S"]
    if not any(op == "M" for _, op in middle):
        middle.append((10, "M"))
    lead = [(3, "S")] if len(ops) % 2 else []
    trail = [(2, "S")] if len(ops) % 3 else []
    return lead + middle + trail


@st.composite
def cigars(draw):
    return Cigar(normalise_ops(draw(cigar_ops)))


@st.composite
def sam_records(draw, index):
    pos = draw(st.integers(min_value=1, max_value=5000))
    cigar = draw(cigars())
    read_len = cigar.query_length()
    seq = "".join(draw(st.sampled_from("ACGT")) for _ in range(read_len))
    quals = [draw(st.integers(min_value=2, max_value=41)) for _ in range(read_len)]
    flag_bits = draw(st.sampled_from([0, F.REVERSE, F.PAIRED | F.FIRST_IN_PAIR]))
    return SamRecord(
        f"read{index:05d}", F.SamFlags(flag_bits), "chr1", pos, 60, cigar,
        seq=seq, qual=encode_quals(quals),
    )


# -- CIGAR properties ----------------------------------------------------------

@given(cigar_ops)
def test_cigar_text_roundtrip(ops):
    cigar = Cigar(normalise_ops(ops))
    assert Cigar.parse(str(cigar)) == cigar


@given(cigar_ops)
def test_cigar_lengths_consistent(ops):
    cigar = Cigar(normalise_ops(ops))
    total = sum(length for length, op in cigar if op in "MIS")
    assert cigar.query_length() == total
    assert cigar.reference_length() >= 0


@given(cigar_ops, st.integers(min_value=100, max_value=10000))
def test_unclipped_five_prime_clipping_invariance(ops, pos):
    """Clipping k leading bases and shifting POS by k leaves the
    forward-strand 5' unclipped end unchanged — the exact invariant
    MarkDuplicates relies on."""
    cigar = Cigar(normalise_ops(ops))
    clip = cigar.leading_clip()
    stripped = Cigar([(l, o) for l, o in cigar if o != "S"] or [(1, "M")])
    assert unclipped_five_prime(pos, cigar, False) == unclipped_five_prime(
        pos - clip, stripped, False
    )


# -- sequence properties -----------------------------------------------------

@given(st.text(alphabet="ACGTN", min_size=0, max_size=200))
def test_reverse_complement_involution(seq):
    assert reverse_complement(reverse_complement(seq)) == seq


@given(st.lists(st.integers(min_value=0, max_value=93), max_size=150))
def test_quality_encoding_roundtrip(quals):
    if quals == [9]:
        # A single Q9 base encodes as "*", which the SAM spec reserves
        # for "qualities absent" — a genuine ambiguity in the format.
        return
    assert decode_quals(encode_quals(quals)) == quals


# -- BAM round-trip over HDFS for arbitrary geometry ---------------------------

@given(
    st.integers(min_value=0, max_value=60),
    st.integers(min_value=200, max_value=3000),
    st.integers(min_value=150, max_value=2000),
    st.integers(min_value=0, max_value=2 ** 31),
)
@settings(max_examples=25, deadline=None)
def test_bam_hdfs_roundtrip_any_geometry(n_records, chunk_bytes, block_size,
                                         seed):
    rng = random.Random(seed)
    header = SamHeader(sequences=[("chr1", 100000)])
    records = [
        SamRecord(
            f"r{i:05d}", F.SamFlags(0), "chr1", rng.randrange(1, 9000), 60,
            Cigar.parse("30M"), seq="ACGTACGTAC" * 3,
            qual=encode_quals([30] * 30),
        )
        for i in range(n_records)
    ]
    data = bam_bytes(header, records, chunk_bytes)
    assert read_bam(data)[1] == records
    hdfs = Hdfs(["n0", "n1"], replication=1, block_size=block_size)
    hdfs.put("/f.bam", data)
    _, got = read_distributed_bam(hdfs, "/f.bam")
    assert got == records


# -- partitioner properties --------------------------------------------------

@given(
    st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=20),
)
def test_group_partitioner_never_splits_groups(group_ids, n_partitions):
    items = [(gid, i) for i, gid in enumerate(group_ids)]
    partitioner = GroupPartitioner(lambda item: item[0], n_partitions)
    partitions = partitioner.split(items)
    verify_group_partitioning(partitions, lambda item: item[0])
    assert sum(len(p) for p in partitions) == len(items)


@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=40),
)
def test_contiguous_split_is_a_partition(n_items, n_parts):
    items = list(range(n_items))
    parts = split_pairs_contiguously(items, n_parts)
    assert [x for p in parts for x in p] == items
    if n_items >= n_parts:
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1


@given(
    st.integers(min_value=10, max_value=5000),
    st.integers(min_value=5, max_value=500),
    st.integers(min_value=0, max_value=120),
)
def test_tiling_covers_every_position(length, segment, overlap):
    if overlap >= segment:
        overlap = segment - 1
    tiles = tile_contig("c", length, segment, overlap)
    for pos in range(1, length + 1):
        assert any(t.start <= pos < t.end for t in tiles)
    # Core starts are non-decreasing and tiles never exceed the contig+1.
    assert all(t.end <= length + 1 for t in tiles)


# -- bloom filter: no false negatives ------------------------------------------

@given(st.lists(st.integers(), max_size=300))
def test_bloom_no_false_negatives(items):
    bloom = BloomFilter(num_bits=1 << 13)
    bloom.update(items)
    assert all(item in bloom for item in items)


# -- external sort == sorted() -------------------------------------------------

@given(
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=400),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_external_sort_matches_builtin(names, buffer_size):
    records = [
        SamRecord(
            f"q{name:05d}", F.SamFlags(0), "chr1", 1, 60, Cigar.parse("4M"),
            seq="ACGT", qual=encode_quals([30] * 4),
        )
        for name in names
    ]
    sorter = ExternalMergeSorter(queryname_key(), max_records_in_ram=buffer_size)
    got = [r.qname for r in sorter.sort(iter(records))]
    assert got == sorted(r.qname for r in records)


# -- MapReduce output independent of parallelism --------------------------------

@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=30), max_size=20),
        min_size=1, max_size=10,
    ),
    st.integers(min_value=1, max_value=9),
)
@settings(max_examples=40, deadline=None)
def test_mapreduce_equals_sequential_groupby(split_payloads, n_reducers):
    def mapper(payload, ctx):
        for value in payload:
            ctx.emit(value % 5, value)

    def reducer(key, values, ctx):
        ctx.emit(key, sorted(values))

    engine = MapReduceEngine(nodes=["n1", "n2"])
    job = JobConf("group", mapper, reducer, num_reducers=n_reducers)
    outputs = dict(engine.run(job, make_splits(split_payloads)).all_outputs())

    expected = {}
    for payload in split_payloads:
        for value in payload:
            expected.setdefault(value % 5, []).append(value)
    expected = {k: sorted(v) for k, v in expected.items()}
    assert outputs == expected
