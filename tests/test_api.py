"""Tests for the frozen ``repro.api`` surface and record blocks.

``JobSpec`` / ``PipelineSpec`` are the only sanctioned construction
paths for jobs and pipeline runs; these tests pin their immutability,
their parity with the legacy constructors, and the sealed-block codec
they feed the engine.
"""

import dataclasses
import pickle

import pytest

from repro.api import (
    JobSpec,
    PipelineSpec,
    make_block_splits,
    run_job,
    run_pipeline,
    run_serial_pipeline,
)
from repro.errors import (
    MapReduceError,
    PipelineError,
    ShuffleCorruptionError,
    ShuffleError,
)
from repro.hdfs.filesystem import Hdfs
from repro.mapreduce import counters as C
from repro.mapreduce.blocks import RecordBlock, encode_block
from repro.mapreduce.executors import fork_available
from repro.mapreduce.job import JobConf
from repro.mapreduce.policy import ExecutionPolicy
from repro.shuffle.config import ShuffleConfig

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _wordcount_spec(**overrides):
    def mapper(records, ctx):
        for line in records:
            for word in line.split():
                ctx.emit(word, 1)

    def fold(key, values, ctx):
        ctx.emit(key, sum(values))

    fields = dict(name="wc", mapper=mapper, reducer=fold, num_reducers=2)
    fields.update(overrides)
    return JobSpec(**fields)


LINES = ["a b a", "c b", "a c c", "b"]


class TestJobSpec:
    def test_is_frozen(self):
        spec = _wordcount_spec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.num_reducers = 4

    def test_to_conf_carries_every_field(self):
        shuffle = ShuffleConfig(codec="zlib-1")
        spec = _wordcount_spec(
            combiner=lambda k, v, c: c.emit(k, sum(v)),
            partitioner=lambda key, n: 0,
            io_sort_records=7,
            slowstart=0.5,
            sort_key=str,
            record_counter=len,
            shuffle=shuffle,
        )
        conf = spec.to_conf()
        assert isinstance(conf, JobConf)
        assert conf.name == "wc"
        assert conf.mapper is spec.mapper
        assert conf.reducer is spec.reducer
        assert conf.combiner is spec.combiner
        assert conf.partitioner is spec.partitioner
        assert conf.num_reducers == 2
        assert conf.io_sort_records == 7
        assert conf.slowstart == 0.5
        assert conf.sort_key is str
        assert conf.record_counter is len
        assert conf.shuffle is shuffle

    def test_to_conf_validates_eagerly(self):
        spec = JobSpec(name="bad", mapper="not-callable")
        with pytest.raises(MapReduceError, match="mapper is not callable"):
            spec.to_conf()

    def test_default_partitioner_preserved(self):
        from repro.mapreduce.job import default_partitioner

        assert _wordcount_spec().to_conf().partitioner is default_partitioner

    def test_replace_derives_variants(self):
        spec = _wordcount_spec()
        variant = dataclasses.replace(spec, num_reducers=5)
        assert spec.num_reducers == 2
        assert variant.num_reducers == 5
        assert variant.mapper is spec.mapper


class TestRunJob:
    def baseline(self):
        return run_job(_wordcount_spec(), make_block_splits([LINES]))

    def test_rejects_non_spec(self):
        with pytest.raises(MapReduceError, match="takes a JobSpec"):
            run_job(_wordcount_spec().to_conf(), [])

    def test_serial_block_wordcount(self):
        result = self.baseline()
        assert sorted(result.all_outputs()) == [("a", 3), ("b", 3), ("c", 3)]
        assert result.counters.get(C.MAP_INPUT_RECORDS) == len(LINES)

    @needs_fork
    def test_pooled_policy_matches_serial_and_closes_engine(self):
        spec = _wordcount_spec(policy=ExecutionPolicy.pooled(max_workers=2))
        result = run_job(spec, make_block_splits([LINES]))
        assert result.all_outputs() == self.baseline().all_outputs()

    def test_spec_nodes_drive_placement(self):
        spec = _wordcount_spec(nodes=("alpha", "beta"))
        result = run_job(spec, make_block_splits([LINES[:2], LINES[2:]]))
        nodes = {attempt.node for attempt in result.history.tasks}
        assert nodes <= {"alpha", "beta"}

    def test_filesystem_is_wired(self):
        hdfs = Hdfs(["n0"], replication=1)

        def mapper(records, ctx):
            ctx.write_file("/out/part", " ".join(records).encode())
            ctx.emit("done", len(records))

        run_job(JobSpec(name="writes", mapper=mapper),
                make_block_splits([["x", "y"]]), filesystem=hdfs)
        assert hdfs.get("/out/part") == b"x y"


class TestPipelineSpec:
    def test_is_frozen(self):
        spec = PipelineSpec(reference=object())
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.num_reducers = 9

    def test_run_pipeline_rejects_non_spec(self):
        with pytest.raises(PipelineError, match="takes a PipelineSpec"):
            run_pipeline(object(), [])

    def test_run_serial_pipeline_rejects_non_spec(self):
        with pytest.raises(PipelineError, match="takes a PipelineSpec"):
            run_serial_pipeline(object(), [])

    def test_matches_legacy_pipeline(self, reference, ref_index, pairs):
        from repro.pipeline.parallel import GesallPipeline

        legacy = GesallPipeline(
            reference, index=ref_index, num_fastq_partitions=4,
            num_reducers=3,
        ).run(pairs)
        spec = PipelineSpec(
            reference=reference, index=ref_index, num_fastq_partitions=4,
            num_reducers=3,
        )
        via_api = run_pipeline(spec, pairs)
        assert [v.to_line() for v in via_api.variants] == \
            [v.to_line() for v in legacy.variants]
        assert [r.to_line() for r in via_api.deduped] == \
            [r.to_line() for r in legacy.deduped]

    def test_serial_reference_program(self, reference, ref_index, pairs):
        spec = PipelineSpec(reference=reference, index=ref_index)
        serial = run_serial_pipeline(spec, pairs)
        assert serial.variants is not None
        assert serial.alignment


class TestRecordBlocks:
    def test_round_trip(self):
        block = RecordBlock(["r1", ("r2", 3), {"k": 4}])
        assert block.decode() == ["r1", ("r2", 3), {"k": 4}]
        assert len(block) == 3
        assert block.count == 3

    def test_encode_block_helper(self):
        assert encode_block(iter("abc")).decode() == ["a", "b", "c"]

    def test_empty_block(self):
        assert RecordBlock([]).decode() == []

    def test_pickle_ships_the_sealed_frame(self):
        block = RecordBlock(list(range(100)))
        clone = pickle.loads(pickle.dumps(block))
        assert clone.blob == block.blob
        assert clone.decode() == list(range(100))

    def test_rejects_records_and_blob_together(self):
        with pytest.raises(ShuffleError, match="not both"):
            RecordBlock(["r"], blob=b"GBLK1")
        with pytest.raises(ShuffleError, match="not both"):
            RecordBlock()

    def test_bad_magic_rejected(self):
        block = RecordBlock(["r"])
        with pytest.raises(ShuffleError, match="magic"):
            RecordBlock(blob=b"XXXXX" + block.blob[5:])

    def test_truncated_frame_rejected(self):
        with pytest.raises(ShuffleCorruptionError, match="truncated"):
            RecordBlock(blob=b"GB")

    def test_payload_corruption_fails_crc(self):
        block = RecordBlock(["record-one", "record-two"])
        rotted = bytearray(block.blob)
        rotted[-1] ^= 0xFF
        with pytest.raises(ShuffleCorruptionError, match="CRC32"):
            RecordBlock(blob=bytes(rotted)).decode()

    def test_make_block_splits_metadata(self):
        splits = make_block_splits(
            [["a"], ["b", "c"]], prefix="part", nodes=["n1", "n2"]
        )
        assert [s.split_id for s in splits] == ["part-00000", "part-00001"]
        assert [s.preferred_node for s in splits] == ["n1", "n2"]
        assert all(isinstance(s.payload, RecordBlock) for s in splits)
        assert splits[1].size_bytes == splits[1].payload.raw_bytes
