"""Unit tests for performance/accuracy metrics and weighting."""

import pytest

from repro.errors import SimulationError
from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import SamRecord, encode_quals
from repro.formats.vcf import VariantRecord
from repro.metrics.accuracy import (
    alignment_signature,
    compare_alignments,
    compare_duplicates,
    compare_variants,
    precision_sensitivity,
    read_key,
)
from repro.metrics.perf import (
    PerfRow,
    format_duration,
    resource_efficiency,
    serial_slot_time,
    speedup,
)
from repro.metrics.quality import (
    het_hom_ratio,
    quality_table,
    summarize_variants,
    ti_tv_ratio,
)
from repro.metrics.weighting import MAPQ_WEIGHT, LogisticWeight


def rec(qname, pos=100, mapq=60, flag_bits=0, dup=False):
    record = SamRecord(
        qname, F.SamFlags(flag_bits | F.PAIRED | F.FIRST_IN_PAIR), "chr1",
        pos, mapq, Cigar.parse("10M"), seq="ACGTACGTAC",
        qual=encode_quals([30] * 10),
    )
    record.set_duplicate(dup)
    return record


def var(pos, qual=80.0, ref="A", alt="G", genotype="0/1"):
    return VariantRecord("chr1", pos, ref, alt, qual, genotype=genotype)


class TestPerf:
    def test_speedup(self):
        assert speedup(100.0, 25.0) == 4.0
        with pytest.raises(SimulationError):
            speedup(10.0, 0.0)

    def test_resource_efficiency(self):
        assert resource_efficiency(45.0, 90) == 0.5
        with pytest.raises(SimulationError):
            resource_efficiency(1.0, 0)

    def test_serial_slot_time(self):
        assert serial_slot_time([(100.0, 4), (50.0, 1)]) == 450.0

    def test_perf_row(self):
        row = PerfRow("r", wall_seconds=100, single_node_seconds=1000,
                      cores_used=20)
        assert row.speedup == 10.0
        assert row.resource_efficiency == 0.5
        assert "speedup" in row.formatted()

    def test_format_duration(self):
        assert format_duration(5256) == "1 hrs, 27 mins, 36 sec"
        assert format_duration(59) == "59 sec"
        assert format_duration(3600) == "1 hrs, 0 mins, 0 sec"

    def test_format_duration_subsecond(self):
        assert format_duration(0.25) == "250 ms"
        assert format_duration(0.9994) == "999 ms"
        assert format_duration(0.9996) == "1 sec"
        assert format_duration(0.0004) == "400 us"
        assert format_duration(0.0) == "0 sec"

    def test_format_duration_negative(self):
        assert format_duration(-59) == "-59 sec"
        assert format_duration(-0.25) == "-250 ms"
        assert format_duration(-5256) == "-1 hrs, 27 mins, 36 sec"


class TestWeighting:
    def test_cutoffs(self):
        assert MAPQ_WEIGHT(30) == 0.0
        assert MAPQ_WEIGHT(29) == 0.0
        assert MAPQ_WEIGHT(55) == 1.0
        assert MAPQ_WEIGHT(60) == 1.0

    def test_monotonic_between_cuts(self):
        values = [MAPQ_WEIGHT(q) for q in range(30, 56)]
        assert values == sorted(values)
        assert 0.4 < MAPQ_WEIGHT(42.5) < 0.6  # midpoint ~0.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogisticWeight(50, 40)
        with pytest.raises(ValueError):
            LogisticWeight(30, 55, edge_value=0.7)


class TestAlignmentComparison:
    def test_identical_sets_concordant(self):
        records = [rec(f"r{i}") for i in range(10)]
        comparison = compare_alignments(records, [r.copy() for r in records])
        assert comparison.d_count == 0
        assert comparison.concordant == 10

    def test_moved_read_discordant(self):
        serial = [rec("a", pos=100, mapq=60)]
        parallel = [rec("a", pos=555, mapq=60)]
        comparison = compare_alignments(serial, parallel)
        assert comparison.d_count == 1
        assert comparison.weighted_d_count == 1.0  # mapq 60 weighs 1

    def test_low_mapq_discordance_weighs_zero(self):
        serial = [rec("a", pos=100, mapq=0)]
        parallel = [rec("a", pos=555, mapq=0)]
        comparison = compare_alignments(serial, parallel)
        assert comparison.d_count == 1
        assert comparison.weighted_d_count == 0.0

    def test_min_quality_filter(self):
        serial = [rec("a", pos=100, mapq=0)]
        parallel = [rec("a", pos=555, mapq=0)]
        comparison = compare_alignments(serial, parallel, min_quality=1)
        assert comparison.d_count == 0

    def test_signature_includes_strand_and_cigar(self):
        a = rec("a")
        b = rec("a", flag_bits=F.REVERSE)
        assert alignment_signature(a) != alignment_signature(b)

    def test_read_key_distinguishes_ends(self):
        first = rec("a")
        second = SamRecord(
            "a", F.SamFlags(F.PAIRED | F.SECOND_IN_PAIR), "chr1", 1, 60,
            Cigar.parse("10M"), seq="ACGTACGTAC", qual=encode_quals([30] * 10),
        )
        assert read_key(first) != read_key(second)

    def test_percentages(self):
        serial = [rec("a", mapq=60), rec("b", mapq=60)]
        parallel = [rec("a", pos=999, mapq=60), rec("b", mapq=60)]
        comparison = compare_alignments(serial, parallel)
        assert comparison.d_count_percent == 50.0
        assert comparison.weighted_d_count_percent == 50.0


class TestDuplicateComparison:
    def test_flag_differences_counted(self):
        serial = [rec("a", dup=True), rec("b", dup=False)]
        parallel = [rec("a", dup=False), rec("b", dup=True)]
        comparison = compare_duplicates(serial, parallel)
        assert comparison.flag_differences == 2
        assert comparison.count_difference == 0  # 1 vs 1 duplicates

    def test_net_count_difference(self):
        serial = [rec("a", dup=True), rec("b", dup=True)]
        parallel = [rec("a", dup=False), rec("b", dup=True)]
        comparison = compare_duplicates(serial, parallel)
        assert comparison.serial_duplicates == 2
        assert comparison.parallel_duplicates == 1
        assert comparison.count_difference == 1


class TestVariantComparison:
    def test_partition(self):
        serial = [var(1), var(2), var(3)]
        other = [var(2), var(3), var(9)]
        comparison = compare_variants(serial, other)
        assert len(comparison.concordant) == 2
        assert [v.pos for v in comparison.only_first] == [1]
        assert [v.pos for v in comparison.only_second] == [9]
        assert comparison.d_count == 2

    def test_weighted_by_qual(self):
        comparison = compare_variants([var(1, qual=150)], [var(9, qual=10)])
        assert comparison.weighted_d_count == pytest.approx(1.0)

    def test_d_count_percent(self):
        comparison = compare_variants([var(1), var(2)], [var(2)])
        assert comparison.d_count_percent == pytest.approx(100.0 / 2)

    def test_precision_sensitivity(self):
        calls = [var(1), var(2), var(3)]
        truth = {var(2).site_key(), var(3).site_key(), var(4).site_key()}
        precision, sensitivity = precision_sensitivity(calls, truth)
        assert precision == pytest.approx(2 / 3)
        assert sensitivity == pytest.approx(2 / 3)

    def test_precision_sensitivity_empty(self):
        assert precision_sensitivity([], {("chr1", 1, "A", "G")}) == (0.0, 0.0)


class TestQualitySummaries:
    def test_ti_tv(self):
        variants = [var(1, ref="A", alt="G"), var(2, ref="C", alt="T"),
                    var(3, ref="A", alt="T")]
        assert ti_tv_ratio(variants) == 2.0

    def test_het_hom(self):
        variants = [var(1), var(2), var(3, genotype="1/1")]
        assert het_hom_ratio(variants) == 2.0

    def test_summary_row(self):
        variants = [
            VariantRecord("chr1", 1, "A", "G", 80,
                          info={"DP": 30, "MQ": 58, "FS": 1.0, "AB": 0.5}),
            VariantRecord("chr1", 2, "C", "T", 60,
                          info={"DP": 20, "MQ": 52, "FS": 3.0, "AB": 0.4}),
        ]
        summary = summarize_variants("test", variants)
        row = summary.as_row()
        assert row["count"] == 2
        assert row["DP"] == 25.0
        assert row["MQ"] == 55.0

    def test_empty_set_summary(self):
        summary = summarize_variants("empty", [])
        assert summary.count == 0
        assert summary.mean_qual == 0.0

    def test_quality_table_rows(self):
        rows = quality_table([var(1)], [var(2)], [var(3)])
        assert [r.label for r in rows] == ["Intersection", "Serial", "Hybrid"]
