"""Tests for the shuffle service (repro.shuffle).

Covers the byte plane bottom-up: canonical key hashing, codecs, the
segment wire format, the spill buffer, the segment store's verified
fetch path, total-order partitioning / skew detection, and finally the
engine-level contracts — byte-identical outputs across every executor x
codec combination, real post-compression byte accounting, and the chaos
gate for injected segment corruption.
"""

import pytest

from repro.chaos.plan import CorruptSegment, FaultPlan, parse_event
from repro.errors import (
    MapReduceError,
    PartitioningError,
    ShuffleCorruptionError,
    ShuffleError,
)
from repro.hdfs.filesystem import Hdfs
from repro.mapreduce import counters as C
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import JobConf, make_splits
from repro.mapreduce.policy import ExecutionPolicy
from repro.shuffle.codec import CODEC_NAMES, codec_for_id, get_codec
from repro.shuffle.config import DEFAULT_SHUFFLE, ShuffleConfig
from repro.shuffle.keys import canonical_key_bytes, stable_hash_partition
from repro.shuffle.merge import merge_sorted_runs_list
from repro.shuffle.segment import (
    HEADER_BYTES,
    decode_segment,
    encode_segment,
    segment_path,
)
from repro.shuffle.skew import (
    TotalOrderPartitioner,
    detect_skew,
    reservoir_sample,
    resplit_hot_ranges,
    split_points_from_sample,
)
from repro.shuffle.spill import SpillBuffer
from repro.shuffle.store import LocalSegmentBackend, SegmentStore


class TestCanonicalKeys:
    def test_distinct_types_never_collide(self):
        keys = [None, True, False, 1, 0, "1", b"1", 1.0, (1,), ("1",)]
        encodings = [canonical_key_bytes(k) for k in keys]
        assert len(set(encodings)) == len(encodings)

    def test_nested_tuples_are_framed(self):
        # Length framing keeps ("ab", "c") distinct from ("a", "bc").
        assert canonical_key_bytes(("ab", "c")) != canonical_key_bytes(
            ("a", "bc")
        )
        assert canonical_key_bytes((("a",), "b")) != canonical_key_bytes(
            ("a", ("b",))
        )

    def test_equal_keys_encode_identically(self):
        assert canonical_key_bytes(("P", "chr1", 500)) == canonical_key_bytes(
            ("P", "chr1", 500)
        )

    def test_non_canonical_keys_rejected(self):
        for bad in ([1, 2], {"a": 1}, {1, 2}, object()):
            with pytest.raises(PartitioningError):
                canonical_key_bytes(bad)
        with pytest.raises(PartitioningError):
            stable_hash_partition(["chr1", 5], 4)

    def test_partition_in_range_and_stable(self):
        for key in ("chr1", ("P", "q0007", 1), 42, b"\x00\xff"):
            first = stable_hash_partition(key, 7)
            assert 0 <= first < 7
            assert stable_hash_partition(key, 7) == first


class TestCodecs:
    def test_roundtrip_every_codec(self):
        payload = b"ACGT" * 500 + b"\x00binary\xff"
        for name in CODEC_NAMES:
            codec = get_codec(name)
            packed = codec.compress(payload)
            assert codec.decompress(packed) == payload

    def test_raw_is_passthrough(self):
        raw = get_codec("raw")
        assert raw.compress(b"data") == b"data"

    def test_zlib_compresses_repetitive_data(self):
        payload = b"ACGT" * 2000
        assert len(get_codec("zlib-1").compress(payload)) < len(payload) / 2

    def test_unknown_codec_rejected(self):
        with pytest.raises(ShuffleError):
            get_codec("snappy")
        with pytest.raises(ShuffleError):
            codec_for_id(250)

    def test_garbage_decompress_raises_shuffle_error(self):
        with pytest.raises(ShuffleError):
            get_codec("zlib-1").decompress(b"not a zlib stream")


class TestSegmentFormat:
    RECORDS = [("chr1", 100), ("chr1", 250), ("chr2", 10)]

    def test_roundtrip_and_accounting(self):
        for name in CODEC_NAMES:
            encoded = encode_segment(self.RECORDS, get_codec(name))
            assert encoded.records == 3
            decoded = decode_segment(encoded.blob)
            assert decoded.records == self.RECORDS
            assert decoded.record_count == 3
            assert decoded.raw_bytes == encoded.raw_bytes
            assert decoded.blob_bytes == len(encoded.blob)
            assert decoded.codec_name == name

    def test_empty_segment_roundtrips(self):
        encoded = encode_segment([], get_codec("raw"))
        assert decode_segment(encoded.blob).records == []

    def test_truncated_blob_is_corruption(self):
        with pytest.raises(ShuffleCorruptionError):
            decode_segment(b"GS")
        blob = encode_segment(self.RECORDS, get_codec("raw")).blob
        with pytest.raises(ShuffleCorruptionError):
            decode_segment(blob[:-3])

    def test_payload_bitflip_fails_crc(self):
        blob = bytearray(encode_segment(self.RECORDS, get_codec("zlib-1")).blob)
        blob[HEADER_BYTES] ^= 0xFF
        with pytest.raises(ShuffleCorruptionError):
            decode_segment(bytes(blob))

    def test_magic_bitflip_is_shuffle_error(self):
        blob = bytearray(encode_segment(self.RECORDS, get_codec("raw")).blob)
        blob[0] ^= 0xFF
        with pytest.raises(ShuffleError):
            decode_segment(bytes(blob))

    def test_segment_paths_are_canonical(self):
        assert segment_path("round2-cleaning", 3, 11) == (
            "/shuffle/round2-cleaning/map-00003/seg-00011.bin"
        )


class TestMerge:
    def test_merge_equals_stable_sort_of_concatenation(self):
        # The ordering contract: k-way merging runs spilled in emit
        # order must equal a stable sort over the emit-ordered stream.
        runs = [
            [("b", 1), ("b", 2), ("c", 1)],
            [("a", 1), ("b", 3)],
            [("a", 2), ("c", 2)],
        ]
        merged = merge_sorted_runs_list(runs, key=lambda kv: kv[0])
        flat = [kv for run in runs for kv in run]
        assert merged == sorted(flat, key=lambda kv: kv[0])

    def test_empty_runs_are_fine(self):
        assert merge_sorted_runs_list([], key=lambda x: x) == []
        assert merge_sorted_runs_list([[], [1], []], key=lambda x: x) == [1]


class TestSpillBuffer:
    @staticmethod
    def _buffer(spill_records=30, partitions=2, track_keys=0):
        return SpillBuffer(
            num_partitions=partitions,
            partitioner=stable_hash_partition,
            sort_key=lambda k: k,
            spill_records=spill_records,
            track_keys=track_keys,
        )

    def test_spill_count_matches_run_count(self):
        buffer = self._buffer(spill_records=30)
        for i in range(100):
            buffer.add(f"k{i:03d}", i)
        spilled = buffer.finish(get_codec("raw"))
        assert spilled.spills == 4  # ceil(100 / 30)

    def test_small_input_counts_one_spill(self):
        buffer = self._buffer(spill_records=1000)
        buffer.add("a", 1)
        assert buffer.finish(get_codec("raw")).spills == 1

    def test_segments_hold_sorted_partitioned_records(self):
        buffer = self._buffer(spill_records=5, partitions=3)
        keys = [f"key-{i:02d}" for i in range(40)]
        for i, key in enumerate(keys):
            buffer.add(key, i)
        spilled = buffer.finish(get_codec("zlib-6"))
        assert len(spilled.segments) == 3
        seen = []
        for partition, segment in enumerate(spilled.segments):
            records = decode_segment(segment.blob).records
            assert [k for k, _ in records] == sorted(k for k, _ in records)
            for key, _ in records:
                assert stable_hash_partition(key, 3) == partition
            seen.extend(records)
        assert sorted(seen) == sorted(zip(keys, range(40)))
        assert spilled.partition_records == [
            len(decode_segment(s.blob).records) for s in spilled.segments
        ]

    def test_out_of_range_partitioner_rejected(self):
        buffer = SpillBuffer(
            num_partitions=2, partitioner=lambda key, n: 5,
            sort_key=lambda k: k, spill_records=10,
        )
        with pytest.raises(ShuffleError):
            buffer.add("k", 1)

    def test_key_tracking_ranks_heaviest_first(self):
        buffer = self._buffer(partitions=1, track_keys=2)
        for _ in range(5):
            buffer.add("hot", 1)
        buffer.add("cold", 1)
        buffer.add("warm", 1)
        buffer.add("warm", 1)
        spilled = buffer.finish(get_codec("raw"))
        assert spilled.key_counts[0] == [("hot", 5), ("warm", 2)]


class TestSegmentStore:
    RECORDS = [("k1", "v1"), ("k2", "v2")]

    def _store_with_segment(self, replicas=3):
        store = SegmentStore(LocalSegmentBackend(replicas=replicas))
        blob = encode_segment(self.RECORDS, get_codec("zlib-1")).blob
        store.put("/shuffle/j/map-00000/seg-00000.bin", blob)
        return store, "/shuffle/j/map-00000/seg-00000.bin"

    def test_clean_fetch(self):
        store, path = self._store_with_segment()
        fetch = store.fetch(path, retries=2)
        assert fetch.segment.records == self.RECORDS
        assert fetch.crc_failures == 0
        assert fetch.refetches == 0

    def test_refetch_fails_over_past_corrupt_replica(self):
        store, path = self._store_with_segment()
        store.corrupt(path, replica_index=0)
        fetch = store.fetch(path, retries=2)
        assert fetch.segment.records == self.RECORDS
        assert fetch.crc_failures == 1
        assert fetch.refetches == 1

    def test_all_replicas_corrupt_raises(self):
        store, path = self._store_with_segment(replicas=2)
        store.corrupt(path, replica_index=0)
        store.corrupt(path, replica_index=1)
        with pytest.raises(ShuffleCorruptionError):
            store.fetch(path, retries=3)

    def test_no_retries_budget_surfaces_corruption(self):
        store, path = self._store_with_segment()
        store.corrupt(path, replica_index=0)
        with pytest.raises(ShuffleCorruptionError):
            store.fetch(path, retries=0)

    def test_hdfs_backend_fetch_and_corruption(self):
        fs = Hdfs(["n0", "n1", "n2"], replication=3)
        store = SegmentStore.for_filesystem(fs)
        blob = encode_segment(self.RECORDS, get_codec("raw")).blob
        path = segment_path("job", 0, 0)
        store.put(path, blob)
        store.corrupt(path, replica_index=0)
        fetch = store.fetch(path, retries=2)
        assert fetch.segment.records == self.RECORDS
        assert fetch.crc_failures == 1
        store.delete(path)
        assert not fs.exists(path)

    def test_for_filesystem_falls_back_to_local(self):
        store = SegmentStore.for_filesystem(None)
        assert isinstance(store.backend, LocalSegmentBackend)


class TestShuffleConfig:
    def test_defaults(self):
        assert DEFAULT_SHUFFLE.codec == "raw"
        assert DEFAULT_SHUFFLE.fetch_retries >= 1

    def test_invalid_codec_rejected(self):
        with pytest.raises(ShuffleError):
            ShuffleConfig(codec="lz4")

    def test_invalid_retries_rejected(self):
        with pytest.raises(ShuffleError):
            ShuffleConfig(fetch_retries=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_SHUFFLE.codec = "zlib-1"


class TestTotalOrderPartitioner:
    def test_reservoir_sample_is_deterministic(self):
        items = list(range(1000))
        assert reservoir_sample(items, 50) == reservoir_sample(items, 50)
        assert len(reservoir_sample(items, 50)) == 50
        assert reservoir_sample([1, 2], 50) == [1, 2]

    def test_split_points_cut_quantiles(self):
        points = split_points_from_sample(list(range(100)), 4)
        assert len(points) == 3
        assert points == sorted(points)

    def test_routes_contiguous_sorted_ranges(self):
        keys = [f"k{i:04d}" for i in range(400)]
        partitioner = TotalOrderPartitioner.from_sample(keys, 4)
        assignments = [partitioner(key, 4) for key in keys]
        # Non-decreasing over sorted keys => ranges are contiguous, and
        # concatenating reducer outputs yields globally sorted data.
        assert assignments == sorted(assignments)
        assert set(assignments) == {0, 1, 2, 3}

    def test_reducer_count_mismatch_rejected(self):
        partitioner = TotalOrderPartitioner(["m"], 2)
        with pytest.raises(ShuffleError):
            partitioner("a", 3)

    def test_resplit_spreads_heavy_keys(self):
        # One heavy key dominating a uniform tail: count-weighted cuts
        # must isolate it rather than split the tail evenly.
        histogram = [("hot", 1000)] + [(f"t{i:02d}", 1) for i in range(30)]
        partitioner = resplit_hot_ranges(histogram, 4)
        tail_partitions = {partitioner(f"t{i:02d}", 4) for i in range(30)}
        assert len(tail_partitions) < 4  # the tail no longer owns every cut


class TestSkewDetection:
    def test_balanced_load_is_not_skewed(self):
        report = detect_skew([[10, 11], [9, 10]], [None, None], 2.0)
        assert not report.is_skewed
        assert report.hot_partitions == []
        assert report.imbalance < 1.1

    def test_hot_partition_detected_with_heavy_keys(self):
        report = detect_skew(
            [[100, 5], [80, 6]],
            [[[("dup", 90), ("x", 10)], []], [[("dup", 70)], []]],
            skew_factor=1.5,
            track_keys=2,
        )
        assert report.is_skewed
        assert report.hot_partitions == [0]
        assert report.heavy_keys[0][0] == ("dup", 160)
        assert report.imbalance > 1.5
        assert any("hot partition 0" in line for line in report.describe())

    def test_empty_tallies(self):
        report = detect_skew([], [], 2.0)
        assert not report.is_skewed
        assert report.imbalance == 1.0


def _kv_mapper(payload, ctx):
    for token in payload.split():
        ctx.emit(token, 1)


def _count_reducer(key, values, ctx):
    ctx.emit(key, sum(values))


SPLIT_TEXT = [
    "gattaca gattaca ref alt ref",
    "alt alt gattaca depth ref",
    "ref ref depth qual gattaca",
]


def _run_wordcount(policy, shuffle, filesystem=None):
    engine = MapReduceEngine(
        nodes=["n0", "n1"], policy=policy, filesystem=filesystem
    )
    job = JobConf(
        "wordcount", _kv_mapper, _count_reducer, num_reducers=3,
        io_sort_records=4, shuffle=shuffle,
    )
    return engine.run(job, make_splits(SPLIT_TEXT))


class TestEngineShuffleIntegration:
    def test_outputs_identical_across_executors_and_codecs(self):
        policies = [
            ExecutionPolicy.serial(),
            ExecutionPolicy.threads(max_workers=2),
            ExecutionPolicy.processes(max_workers=2),
        ]
        baseline = _run_wordcount(
            ExecutionPolicy.serial(), DEFAULT_SHUFFLE
        ).all_outputs()
        for policy in policies:
            for codec in CODEC_NAMES:
                result = _run_wordcount(policy, ShuffleConfig(codec=codec))
                assert result.all_outputs() == baseline, (
                    f"{policy.executor}/{codec} diverged"
                )

    def test_shuffled_bytes_measure_real_segment_bytes(self):
        raw = _run_wordcount(ExecutionPolicy.serial(), DEFAULT_SHUFFLE)
        packed = _run_wordcount(
            ExecutionPolicy.serial(), ShuffleConfig(codec="zlib-6")
        )
        # Raw counts match; only the wire bytes change with the codec.
        assert (
            raw.counters.get(C.SHUFFLE_RAW_BYTES)
            == packed.counters.get(C.SHUFFLE_RAW_BYTES)
            > 0
        )
        assert (
            packed.counters.get(C.SHUFFLED_BYTES)
            < raw.counters.get(C.SHUFFLED_BYTES)
        )
        assert raw.counters.get(C.SHUFFLE_SEGMENTS) == 3 * 3
        assert raw.counters.get(C.SHUFFLE_CRC_FAILURES) == 0

    def test_skew_report_attached_to_job_result(self):
        result = _run_wordcount(ExecutionPolicy.serial(), DEFAULT_SHUFFLE)
        assert result.skew is not None
        assert len(result.skew.partition_records) == 3
        assert sum(result.skew.partition_records) == result.counters.get(
            C.SHUFFLED_RECORDS
        )

    def test_segments_cleaned_up_from_filesystem(self):
        fs = Hdfs(["n0", "n1", "n2"], replication=2)
        _run_wordcount(ExecutionPolicy.serial(), DEFAULT_SHUFFLE,
                       filesystem=fs)
        assert fs.list_dir("/shuffle") == []

    def _chaos_policy(self, events):
        return ExecutionPolicy(
            fault_plan=FaultPlan(seed=0, events=tuple(events))
        )

    def test_single_replica_corruption_is_absorbed(self):
        fs = Hdfs(["n0", "n1", "n2"], replication=3)
        clean = _run_wordcount(ExecutionPolicy.serial(), DEFAULT_SHUFFLE)
        policy = self._chaos_policy(
            [CorruptSegment("wordcount", map_index=0, reducer=0,
                            replica_index=0)]
        )
        chaos = _run_wordcount(policy, DEFAULT_SHUFFLE, filesystem=fs)
        assert chaos.all_outputs() == clean.all_outputs()
        assert chaos.counters.get(C.SHUFFLE_CRC_FAILURES) == 1
        assert chaos.counters.get(C.SHUFFLE_FETCH_RETRIES) == 1
        events = chaos.history.events_of("segment_corrupted")
        assert len(events) == 1
        assert events[0]["path"] == segment_path("wordcount", 0, 0)

    def test_corruption_beyond_retry_budget_fails_the_job(self):
        fs = Hdfs(["n0", "n1"], replication=2)
        policy = self._chaos_policy([
            CorruptSegment("wordcount", map_index=0, reducer=0,
                           replica_index=r)
            for r in range(2)
        ])
        shuffle = ShuffleConfig(fetch_retries=1)
        with pytest.raises(MapReduceError):
            _run_wordcount(policy, shuffle, filesystem=fs)

    def test_events_for_other_jobs_are_ignored(self):
        fs = Hdfs(["n0", "n1"], replication=2)
        policy = self._chaos_policy(
            [CorruptSegment("another-job", map_index=0, reducer=0)]
        )
        result = _run_wordcount(policy, DEFAULT_SHUFFLE, filesystem=fs)
        assert result.counters.get(C.SHUFFLE_CRC_FAILURES) == 0
        assert result.history.events_of("segment_corrupted") == []

    def test_out_of_range_event_is_an_error(self):
        fs = Hdfs(["n0", "n1"], replication=2)
        policy = self._chaos_policy(
            [CorruptSegment("wordcount", map_index=99, reducer=0)]
        )
        with pytest.raises(MapReduceError):
            _run_wordcount(policy, DEFAULT_SHUFFLE, filesystem=fs)


class TestChaosPlanParsing:
    def test_parse_corrupt_segment_specs(self):
        event = parse_event("round2-cleaning:1:2:0", "corrupt-segment")
        assert event == CorruptSegment(
            "round2-cleaning", map_index=1, reducer=2, replica_index=0
        )
        assert parse_event("jobx", "corrupt-segment") == CorruptSegment("jobx")

    def test_plan_filters_segment_events_by_job(self):
        plan = FaultPlan(seed=1, events=(
            CorruptSegment("a", map_index=0, reducer=0),
            CorruptSegment("b", map_index=1, reducer=1),
        ))
        assert [e.job for e in plan.segment_events("a")] == ["a"]
        assert plan.segment_events("c") == []
