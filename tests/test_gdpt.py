"""Unit tests for the Genome Data Parallel Toolkit."""

import pytest

from repro.errors import PartitioningError
from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import SamHeader, SamRecord, encode_quals
from repro.gdpt.bloom import BloomFilter
from repro.gdpt.partitioner import (
    GroupPartitioner,
    MarkDupKeying,
    OverlappingRangePartitioner,
    RangePartitioner,
    build_partial_position_bloom,
    read_name_key,
    split_pairs_contiguously,
    verify_group_partitioning,
)


def rec(qname, pos=100, rname="chr1", flag_bits=0, cigar="10M"):
    return SamRecord(
        qname, F.SamFlags(flag_bits), rname, pos, 60, Cigar.parse(cigar),
        seq="ACGTACGTAC", qual=encode_quals([30] * 10),
    )


def pair(qname, pos1, pos2, mapped2=True):
    bits1 = F.PAIRED | F.FIRST_IN_PAIR
    bits2 = F.PAIRED | F.SECOND_IN_PAIR | F.REVERSE
    if not mapped2:
        bits1 |= F.MATE_UNMAPPED
        bits2 = F.PAIRED | F.SECOND_IN_PAIR | F.UNMAPPED
    return rec(qname, pos1, flag_bits=bits1), rec(qname, pos2, flag_bits=bits2)


HEADER = SamHeader(sequences=[("chr1", 9000), ("chr2", 7000)])


class TestBloomFilter:
    def test_membership(self):
        bloom = BloomFilter()
        bloom.add(("chr1", 123))
        assert ("chr1", 123) in bloom
        assert ("chr1", 124) not in bloom

    def test_no_false_negatives(self):
        bloom = BloomFilter(num_bits=1 << 12)
        items = [("chr1", i) for i in range(500)]
        bloom.update(items)
        assert all(item in bloom for item in items)

    def test_false_positive_rate_bounded(self):
        bloom = BloomFilter(num_bits=1 << 14, num_hashes=3)
        bloom.update(("chr1", i) for i in range(400))
        false_hits = sum(
            1 for i in range(10_000, 20_000) if ("chr1", i) in bloom
        )
        assert false_hits / 10_000 < 0.05

    def test_merge_is_union(self):
        a, b = BloomFilter(num_bits=1 << 10), BloomFilter(num_bits=1 << 10)
        a.add("x")
        b.add("y")
        a.merge(b)
        assert "x" in a and "y" in a

    def test_merge_geometry_mismatch(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=1 << 10).merge(BloomFilter(num_bits=1 << 11))

    def test_fill_estimate(self):
        bloom = BloomFilter(num_bits=1 << 10)
        assert bloom.estimated_fill() == 0.0
        bloom.add("x")
        assert bloom.estimated_fill() > 0.0


class TestGroupPartitioning:
    def test_groups_never_split(self):
        records = []
        for i in range(50):
            records.extend(pair(f"q{i}", 100 + i, 300 + i))
        partitioner = GroupPartitioner(read_name_key, 7)
        partitions = partitioner.split(records)
        verify_group_partitioning(partitions, read_name_key)

    def test_verify_detects_violation(self):
        a, b = pair("same", 100, 300)
        with pytest.raises(PartitioningError):
            verify_group_partitioning([[a], [b]], read_name_key)

    def test_all_records_assigned(self):
        records = [rec(f"q{i}") for i in range(100)]
        partitions = GroupPartitioner(read_name_key, 5).split(records)
        assert sum(len(p) for p in partitions) == 100

    def test_invalid_partition_count(self):
        with pytest.raises(PartitioningError):
            GroupPartitioner(read_name_key, 0)

    def test_contiguous_split_balance_and_order(self):
        pairs = [(i, i) for i in range(103)]
        parts = split_pairs_contiguously(pairs, 10)
        assert sum(len(p) for p in parts) == 103
        assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1
        flat = [x for p in parts for x in p]
        assert flat == pairs

    def test_non_canonical_key_raises(self):
        # A key_fn returning a type without a canonical byte encoding
        # must fail loudly at the first item, not silently hash repr()
        # (which can embed process-dependent state like id()).
        class Opaque:
            pass

        partitioner = GroupPartitioner(lambda record: Opaque(), 4)
        with pytest.raises(PartitioningError):
            partitioner.partition_of(rec("q0"))
        partitioner = GroupPartitioner(lambda record: [record.qname], 4)
        with pytest.raises(PartitioningError):
            partitioner.split([rec("q0")])

    def test_placement_identical_across_interpreters(self):
        # Regression for the repr()-hash bug: partition placement must
        # be a pure function of the key bytes, so a forked (or freshly
        # spawned) worker with a different PYTHONHASHSEED agrees with
        # the parent about where every group lives.
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        qnames = [f"read-{i:04d}" for i in range(64)]
        partitioner = GroupPartitioner(read_name_key, 7)
        parent = [partitioner.partition_of(rec(name)) for name in qnames]

        script = (
            "import json, sys\n"
            "from repro.shuffle.keys import stable_hash_partition\n"
            "names = json.loads(sys.stdin.read())\n"
            "print(json.dumps("
            "[stable_hash_partition(n, 7) for n in names]))\n"
        )
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        for hash_seed in ("1", "4242"):
            env = dict(os.environ, PYTHONPATH=src_dir,
                       PYTHONHASHSEED=hash_seed)
            out = subprocess.run(
                [sys.executable, "-c", script],
                input=json.dumps(qnames), capture_output=True,
                text=True, env=env, check=True,
            )
            assert json.loads(out.stdout) == parent


class TestMarkDupKeying:
    def test_complete_pair_emits_pair_key(self):
        keying = MarkDupKeying("reg")
        end1, end2 = pair("q", 100, 300)
        emissions = keying.keys_for_pair(end1, end2)
        kinds = [key[0] for key, _ in emissions]
        assert kinds.count("P") == 1
        assert kinds.count("F") == 2  # reg always shadows both ends

    def test_map_side_filter_dedupes_shadows(self):
        keying = MarkDupKeying("reg")
        keying.reset()
        first = keying.keys_for_pair(*pair("a", 100, 300))
        second = keying.keys_for_pair(*pair("b", 100, 300))
        shadows_second = [k for k, v in second if k[0] == "F"]
        assert shadows_second == []  # same 5' positions already sent
        assert len([k for k, v in first if k[0] == "F"]) == 2

    def test_opt_mode_consults_bloom(self):
        bloom = BloomFilter()
        keying = MarkDupKeying("opt", bloom)
        emissions = keying.keys_for_pair(*pair("a", 100, 300))
        assert [k for k, _ in emissions if k[0] == "F"] == []
        # Now mark position 100 as having a partial matching.
        end1, _ = pair("x", 100, 300)
        bloom.add((end1.rname, end1.unclipped_five_prime))
        keying2 = MarkDupKeying("opt", bloom)
        emissions2 = keying2.keys_for_pair(*pair("b", 100, 300))
        assert len([k for k, _ in emissions2 if k[0] == "F"]) == 1

    def test_partial_pair_emits_fragment_key(self):
        keying = MarkDupKeying("reg")
        emissions = keying.keys_for_pair(*pair("p", 100, 100, mapped2=False))
        assert len(emissions) == 1
        assert emissions[0][0][0] == "F"
        assert emissions[0][1][0] == "partial"

    def test_both_unmapped_passthrough(self):
        keying = MarkDupKeying("reg")
        end1 = rec("u", 0, rname="*",
                   flag_bits=F.PAIRED | F.UNMAPPED | F.MATE_UNMAPPED, cigar="*")
        end2 = rec("u", 0, rname="*",
                   flag_bits=F.PAIRED | F.UNMAPPED | F.MATE_UNMAPPED, cigar="*")
        emissions = keying.keys_for_pair(end1, end2)
        assert emissions[0][0][0] == "U"

    def test_opt_requires_bloom(self):
        with pytest.raises(PartitioningError):
            MarkDupKeying("opt")

    def test_bloom_built_from_partials_only(self):
        pairs = [pair("a", 100, 300), pair("b", 500, 500, mapped2=False)]
        bloom = build_partial_position_bloom(pairs)
        assert bloom.items_added == 1

    def test_opt_shuffles_fewer_records_than_reg(self):
        pairs = [pair(f"q{i}", 100 + 7 * i, 400 + 7 * i) for i in range(40)]
        pairs.append(pair("partial", 100, 100, mapped2=False))
        bloom = build_partial_position_bloom(pairs)
        reg_count = 0
        keying = MarkDupKeying("reg")
        keying.reset()
        for p in pairs:
            reg_count += len(keying.keys_for_pair(*p))
        opt_count = 0
        keying = MarkDupKeying("opt", bloom)
        keying.reset()
        for p in pairs:
            opt_count += len(keying.keys_for_pair(*p))
        assert opt_count < reg_count


class TestRangePartitioning:
    def test_by_chromosome(self):
        partitioner = RangePartitioner(HEADER)
        assert partitioner.num_partitions == 2
        records = [rec("a", rname="chr1"), rec("b", rname="chr2"),
                   rec("c", rname="chr1")]
        partitions = partitioner.split(records)
        assert [r.qname for r in partitions[0]] == ["a", "c"]
        assert [r.qname for r in partitions[1]] == ["b"]

    def test_unmapped_unplaced(self):
        partitioner = RangePartitioner(HEADER)
        unmapped = rec("u", 0, rname="*", flag_bits=F.UNMAPPED, cigar="*")
        assert partitioner.partition_of(unmapped) is None


class TestOverlappingRangePartitioning:
    def test_interior_read_in_one_partition(self):
        partitioner = OverlappingRangePartitioner(HEADER, 1000, overlap=50)
        record = rec("mid", pos=500)
        assert len(partitioner.partitions_of(record)) == 1

    def test_boundary_read_replicated(self):
        partitioner = OverlappingRangePartitioner(HEADER, 1000, overlap=50)
        record = rec("edge", pos=996)  # spans the 1000/1001 boundary
        assert len(partitioner.partitions_of(record)) == 2

    def test_every_read_covered(self):
        partitioner = OverlappingRangePartitioner(HEADER, 1000, overlap=100)
        records = [rec(f"r{p}", pos=p) for p in range(1, 8980, 37)]
        partitions = partitioner.split(records)
        seen = {r.qname for part in partitions for r in part}
        assert seen == {r.qname for r in records}

    def test_replication_factor_grows_with_overlap(self):
        records = [rec(f"r{p}", pos=p) for p in range(1, 8900, 13)]
        small = OverlappingRangePartitioner(HEADER, 500, overlap=10)
        large = OverlappingRangePartitioner(HEADER, 500, overlap=200)
        assert large.replication_factor(records) > small.replication_factor(records)

    def test_cores_do_not_overlap(self):
        partitioner = OverlappingRangePartitioner(HEADER, 700, overlap=60)
        for a, b in zip(partitioner.cores, partitioner.cores[1:]):
            if a.contig == b.contig:
                assert a.end == b.start

    def test_invalid_params(self):
        with pytest.raises(PartitioningError):
            OverlappingRangePartitioner(HEADER, 0, 10)
        with pytest.raises(PartitioningError):
            OverlappingRangePartitioner(HEADER, 100, -1)
