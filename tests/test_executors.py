"""Execution plane tests: policies, executors, retries, determinism.

The engine's contract is that the serial, threaded, and fork-based
process executors produce byte-identical results for every job — and
that injected faults, absorbed by retries, change nothing but the
attempt counters.  These tests pin that contract, first on small
synthetic jobs and then on the full five-round Gesall pipeline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import JobSpec, make_block_splits, run_job
from repro.errors import MapReduceError
from repro.hdfs.filesystem import Hdfs
from repro.mapreduce import counters as C
from repro.mapreduce.blocks import RecordBlock
from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import JobResult, MapReduceEngine
from repro.mapreduce.executors import (
    ElasticPoolExecutor,
    PooledProcessExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    _reap_orphaned_pools,
    build_executor,
    fork_available,
)
from repro.mapreduce.job import InputSplit, JobConf, make_splits
from repro.mapreduce.policy import EXECUTOR_KINDS, ExecutionPolicy
from repro.pipeline.parallel import GesallPipeline

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

ALL_POLICIES = [
    ExecutionPolicy.serial(),
    ExecutionPolicy.threads(max_workers=4),
    pytest.param(ExecutionPolicy.processes(max_workers=2), marks=needs_fork),
    pytest.param(ExecutionPolicy.pooled(max_workers=2), marks=needs_fork),
    pytest.param(
        ExecutionPolicy.elastic(max_workers=3, min_workers=1),
        marks=needs_fork,
    ),
]
POLICY_IDS = ["serial", "thread", "process", "pool", "elastic"]


def wordcount_job():
    def mapper(line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def reducer(word, counts, ctx):
        ctx.emit(word, sum(counts))

    return JobConf("wordcount", mapper, reducer, num_reducers=2)


LINES = [
    "the quick brown fox",
    "jumps over the lazy dog",
    "the dog barks",
    "quick quick slow",
]


class TestExecutionPolicy:
    def test_rejects_unknown_executor(self):
        with pytest.raises(MapReduceError, match="unknown executor"):
            ExecutionPolicy(executor="gpu")

    def test_rejects_bad_workers_and_retries(self):
        with pytest.raises(MapReduceError):
            ExecutionPolicy(executor="thread", max_workers=0)
        with pytest.raises(MapReduceError):
            ExecutionPolicy(task_retries=-1)
        with pytest.raises(MapReduceError):
            ExecutionPolicy(fault_rate=1.5)

    def test_frozen(self):
        policy = ExecutionPolicy.serial()
        with pytest.raises(Exception):
            policy.executor = "thread"

    def test_resolved_workers(self):
        assert ExecutionPolicy.serial().resolved_workers() == 1
        assert ExecutionPolicy.threads(max_workers=7).resolved_workers() == 7
        assert ExecutionPolicy.processes().resolved_workers() >= 1

    def test_fault_draw_is_deterministic_and_policy_independent(self):
        """The draw depends only on (seed, task, attempt) — never on
        the executor kind — so all executors see the same failures."""
        draws = {
            kind: [
                ExecutionPolicy(
                    executor=kind, fault_rate=0.3, fault_seed=42,
                    task_retries=5,
                ).injects_fault(f"job-m-{i:05d}", attempt)
                for i in range(20)
                for attempt in (1, 2)
            ]
            for kind in EXECUTOR_KINDS
        }
        assert (draws["serial"] == draws["thread"] == draws["process"]
                == draws["pool"])
        assert any(draws["serial"])  # rate 0.3 over 40 draws must hit

    def test_backoff_is_capped(self):
        policy = ExecutionPolicy(retry_backoff=0.01, retry_backoff_cap=0.05)
        delays = [policy.backoff_delay(a) for a in range(1, 10)]
        assert delays == sorted(delays)
        assert max(delays) == 0.05


class TestExecutors:
    def test_build_executor_maps_kinds(self):
        assert isinstance(
            build_executor(ExecutionPolicy.serial()), SerialExecutor
        )
        assert isinstance(
            build_executor(ExecutionPolicy.threads(2)), ThreadedExecutor
        )

    @needs_fork
    def test_build_executor_process(self):
        assert isinstance(
            build_executor(ExecutionPolicy.processes(2)), ProcessExecutor
        )

    @needs_fork
    def test_build_executor_pool(self):
        executor = build_executor(ExecutionPolicy.pooled(2))
        assert isinstance(executor, PooledProcessExecutor)
        executor.close()

    @needs_fork
    def test_build_executor_elastic(self):
        executor = build_executor(
            ExecutionPolicy.elastic(max_workers=4, min_workers=2)
        )
        assert isinstance(executor, ElasticPoolExecutor)
        assert executor.max_workers == 4
        assert executor.min_workers == 2
        executor.close()

    @pytest.mark.parametrize(
        "executor",
        [
            SerialExecutor(),
            ThreadedExecutor(max_workers=3),
            pytest.param(ProcessExecutor(max_workers=2), marks=needs_fork),
        ],
        ids=["serial", "thread", "process"],
    )
    def test_results_arrive_in_submission_order(self, executor):
        thunks = [lambda i=i: i * i for i in range(10)]
        assert executor.run_tasks(thunks) == [i * i for i in range(10)]

    def test_empty_wave(self):
        assert SerialExecutor().run_tasks([]) == []


class TestEngineAcrossExecutors:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=POLICY_IDS)
    def test_wordcount_identical(self, policy):
        baseline = MapReduceEngine(nodes=["n1", "n2"]).run(
            wordcount_job(), make_splits(LINES)
        )
        with MapReduceEngine(nodes=["n1", "n2"], policy=policy) as engine:
            result = engine.run(wordcount_job(), make_splits(LINES))
        assert result.all_outputs() == baseline.all_outputs()
        assert result.reduce_outputs == baseline.reduce_outputs

    @settings(max_examples=25, deadline=None)
    @given(
        lines=st.lists(
            st.text(
                alphabet=st.sampled_from("ab cd"), min_size=0, max_size=30
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_property_serial_thread_equivalence(self, lines):
        """Property: the threaded engine is indistinguishable from the
        serial reference on arbitrary inputs."""
        serial = MapReduceEngine(nodes=["n1"]).run(
            wordcount_job(), make_splits(lines)
        )
        threaded = MapReduceEngine(
            nodes=["n1"], policy=ExecutionPolicy.threads(max_workers=4)
        ).run(wordcount_job(), make_splits(lines))
        assert threaded.all_outputs() == serial.all_outputs()
        assert threaded.counters.as_dict() == serial.counters.as_dict()


class TestRetriesAndFaults:
    def run_with(self, policy):
        return MapReduceEngine(nodes=["n1"], policy=policy).run(
            wordcount_job(), make_splits(LINES)
        )

    @pytest.mark.parametrize(
        "executor_kind",
        ["serial", "thread", pytest.param("process", marks=needs_fork)],
    )
    def test_injected_faults_are_retried_to_identical_outputs(
        self, executor_kind
    ):
        clean = self.run_with(ExecutionPolicy.serial())
        faulty = self.run_with(
            ExecutionPolicy(
                executor=executor_kind, max_workers=2, fault_rate=0.2,
                fault_seed=7, task_retries=8, retry_backoff=0.0,
            )
        )
        assert faulty.all_outputs() == clean.all_outputs()
        assert faulty.counters.get(C.INJECTED_FAULTS) > 0
        total_tasks = len(faulty.history.tasks)
        assert faulty.history.total_attempts() > total_tasks
        assert faulty.history.retried_tasks()

    def test_attempt_counters_without_faults(self):
        result = self.run_with(ExecutionPolicy.serial())
        assert result.counters.get(C.MAP_TASK_ATTEMPTS) == len(LINES)
        assert result.counters.get(C.REDUCE_TASK_ATTEMPTS) == 2
        assert C.INJECTED_FAULTS not in result.counters

    def test_attempts_recorded_per_task_in_history(self):
        faulty = self.run_with(
            ExecutionPolicy(
                fault_rate=0.2, fault_seed=7, task_retries=8,
                retry_backoff=0.0,
            )
        )
        by_counter = faulty.counters.get(C.MAP_TASK_ATTEMPTS) + \
            faulty.counters.get(C.REDUCE_TASK_ATTEMPTS)
        assert by_counter == faulty.history.total_attempts()

    def test_exhausted_retries_raise(self):
        def bad_mapper(line, ctx):
            raise ValueError("boom")

        job = JobConf("doomed", bad_mapper)
        engine = MapReduceEngine(
            nodes=["n1"],
            policy=ExecutionPolicy(task_retries=2, retry_backoff=0.0),
        )
        with pytest.raises(MapReduceError, match="after 3 attempt"):
            engine.run(job, make_splits(["x"]))

    def test_speculative_stub_counts_and_audits(self):
        result = MapReduceEngine(
            nodes=["n1"],
            policy=ExecutionPolicy.threads(max_workers=2, speculative=True),
        ).run(wordcount_job(), make_splits(LINES))
        # One duplicate per wave (map + reduce).
        assert result.counters.get(C.SPECULATIVE_ATTEMPTS) == 2

    def test_speculative_detects_nondeterminism(self):
        calls = []

        def impure_mapper(line, ctx):
            calls.append(line)
            ctx.emit(f"call-{len(calls)}", 1)

        job = JobConf("impure", impure_mapper)
        engine = MapReduceEngine(
            nodes=["n1"],
            policy=ExecutionPolicy.threads(max_workers=1, speculative=True),
        )
        with pytest.raises(MapReduceError, match="not deterministic"):
            engine.run(job, make_splits(["a", "b"]))


class TestRecordCounting:
    def test_map_input_records_counts_records_not_splits(self):
        """Regression: MAP_INPUT_RECORDS used to count one per split."""
        job = JobConf(
            "counted",
            lambda payload, ctx: None,
            record_counter=len,
        )
        result = MapReduceEngine(nodes=["n1"]).run(
            job, make_splits([["r1", "r2", "r3"], ["r4"]])
        )
        assert result.counters.get(C.MAP_INPUT_RECORDS) == 4

    def test_default_remains_one_per_split(self):
        job = JobConf("plain", lambda payload, ctx: None)
        result = MapReduceEngine(nodes=["n1"]).run(
            job, make_splits([["r1", "r2"], ["r3"]])
        )
        assert result.counters.get(C.MAP_INPUT_RECORDS) == 2

    def test_context_override_wins(self):
        def mapper(payload, ctx):
            ctx.set_input_records(len(payload))

        result = MapReduceEngine(nodes=["n1"]).run(
            JobConf("override", mapper), make_splits([["a", "b"], ["c"]])
        )
        assert result.counters.get(C.MAP_INPUT_RECORDS) == 3


def _block_spec(policy, combiner=False):
    """Word count over block-encoded splits, optionally combined."""

    def mapper(records, ctx):
        for line in records:
            for word in line.split():
                ctx.emit(word, 1)

    def fold(key, values, ctx):
        ctx.emit(key, sum(values))

    return JobSpec(
        name="block-wordcount",
        mapper=mapper,
        reducer=fold,
        combiner=fold if combiner else None,
        num_reducers=2,
        io_sort_records=4,  # force multiple spills per map task
        policy=policy,
    )


def _block_splits():
    return make_block_splits([[line] for line in LINES], prefix="lines")


class TestBlockSplitsAcrossExecutors:
    """Sealed record blocks decode to the same bytes on every executor."""

    @pytest.fixture(scope="class")
    def serial_block_run(self):
        return run_job(
            _block_spec(ExecutionPolicy.serial()), _block_splits()
        )

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=POLICY_IDS)
    def test_block_encoded_outputs_identical(self, policy, serial_block_run):
        result = run_job(_block_spec(policy), _block_splits())
        assert result.all_outputs() == serial_block_run.all_outputs()
        assert result.reduce_outputs == serial_block_run.reduce_outputs

    def test_block_records_counted_not_splits(self, serial_block_run):
        assert serial_block_run.counters.get(C.MAP_INPUT_RECORDS) == len(LINES)

    def test_mapper_receives_decoded_records(self):
        seen = []

        def mapper(records, ctx):
            seen.append(list(records))
            ctx.emit(ctx.task_index, len(records))

        spec = JobSpec(name="decode", mapper=mapper)
        result = run_job(spec, make_block_splits([["a", "b"], ["c"]]))
        assert seen == [["a", "b"], ["c"]]
        assert result.all_outputs() == [(0, 2), (1, 1)]


class TestCombinerAcrossExecutors:
    """Combiner on vs off is byte-identical while shuffling less."""

    @pytest.fixture(scope="class")
    def uncombined(self):
        return run_job(
            _block_spec(ExecutionPolicy.serial(), combiner=False),
            _block_splits(),
        )

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=POLICY_IDS)
    def test_combined_outputs_identical(self, policy, uncombined):
        combined = run_job(
            _block_spec(policy, combiner=True), _block_splits()
        )
        assert combined.all_outputs() == uncombined.all_outputs()
        assert combined.reduce_outputs == uncombined.reduce_outputs

    def test_combiner_reduces_shuffled_records(self, uncombined):
        combined = run_job(
            _block_spec(ExecutionPolicy.serial(), combiner=True),
            _block_splits(),
        )
        assert combined.counters.get(C.SHUFFLED_RECORDS) < \
            uncombined.counters.get(C.SHUFFLED_RECORDS)
        assert combined.counters.get(C.SHUFFLE_RAW_BYTES) < \
            uncombined.counters.get(C.SHUFFLE_RAW_BYTES)
        assert combined.counters.get(C.COMBINE_OUTPUT_RECORDS) < \
            combined.counters.get(C.COMBINE_INPUT_RECORDS)
        assert C.COMBINE_INPUT_RECORDS not in uncombined.counters


@needs_fork
class TestPooledExecutorLifecycle:
    def test_run_tasks_rejected(self):
        """The pool never ships thunks — only picklable descriptors."""
        executor = PooledProcessExecutor(max_workers=2)
        try:
            with pytest.raises(MapReduceError):
                executor.run_tasks([lambda: 1])
        finally:
            executor.close()

    def test_pool_reuses_workers_across_jobs(self):
        with MapReduceEngine(
            nodes=["n1", "n2"], policy=ExecutionPolicy.pooled(max_workers=2)
        ) as engine:
            for _ in range(3):
                result = engine.run(wordcount_job(), make_splits(LINES))
            executor = engine._executor
            # One fork pair per job; the reduce wave of every job ran
            # on workers the map wave already warmed.
            assert executor.jobs == 3
            assert executor.forks == 6
            assert executor.waves_reused == 3
            assert executor.workers_respawned == 0
        baseline = MapReduceEngine(nodes=["n1", "n2"]).run(
            wordcount_job(), make_splits(LINES)
        )
        assert result.all_outputs() == baseline.all_outputs()

    def test_engine_close_is_idempotent_and_reusable(self):
        engine = MapReduceEngine(
            nodes=["n1"], policy=ExecutionPolicy.pooled(max_workers=2)
        )
        first = engine.run(wordcount_job(), make_splits(LINES))
        engine.close()
        engine.close()
        second = engine.run(wordcount_job(), make_splits(LINES))
        engine.close()
        assert first.all_outputs() == second.all_outputs()

    def test_executor_close_is_idempotent(self):
        """Regression: double-close used to re-stop dead workers."""
        executor = PooledProcessExecutor(max_workers=2)
        assert not executor.closed
        executor.close()
        assert executor.closed
        executor.close()  # must be a no-op, not an error
        assert executor.closed

    def test_atexit_guard_reaps_orphaned_pools(self):
        """A pool the driver forgot to close is torn down by the
        atexit guard — no orphaned fork survives interpreter exit."""
        orphan = PooledProcessExecutor(max_workers=1)
        assert not orphan.closed
        _reap_orphaned_pools()
        assert orphan.closed
        # Already-closed pools are skipped, not re-closed.
        _reap_orphaned_pools()
        assert orphan.closed


class TestApiRedesign:
    def test_positional_nodes_deprecated(self):
        with pytest.deprecated_call():
            engine = MapReduceEngine(["n1", "n2"])
        assert engine.nodes == ["n1", "n2"]

    def test_positional_and_keyword_nodes_conflict(self):
        with pytest.raises(TypeError):
            MapReduceEngine(["n1"], nodes=["n2"])

    def test_split_positional_locality_deprecated(self):
        with pytest.deprecated_call():
            split = InputSplit("s0", "payload", "n1", 64)
        assert split.preferred_node == "n1"
        assert split.size_bytes == 64

    def test_split_positional_keyword_conflict(self):
        with pytest.raises(TypeError):
            InputSplit("s0", "payload", "n1", preferred_node="n2")

    def test_validate_rejects_reducerless_num_reducers(self):
        job = JobConf("bad", lambda p, c: None)
        job.num_reducers = 4  # simulate a conf mutated after the fact
        with pytest.raises(MapReduceError, match="no reducer"):
            MapReduceEngine(nodes=["n1"]).run(job, make_splits(["x"]))

    def test_validate_rejects_uncallable_mapper(self):
        job = JobConf("bad2", lambda p, c: None)
        job.mapper = "not-a-function"
        with pytest.raises(MapReduceError, match="mapper is not callable"):
            job.validate()

    def test_counters_is_a_mapping(self):
        from collections.abc import Mapping

        counters = Counters()
        counters.inc("B", 2)
        counters.inc("A", 1)
        assert isinstance(counters, Mapping)
        assert list(counters) == ["A", "B"]
        assert dict(counters.items()) == {"A": 1, "B": 2}
        assert counters["B"] == 2
        assert "A" in counters and len(counters) == 2
        with pytest.raises(KeyError):
            counters["missing"]

    def test_job_result_is_iterable(self):
        result = MapReduceEngine(nodes=["n1"]).run(
            wordcount_job(), make_splits(LINES)
        )
        assert list(result) == result.all_outputs()
        assert len(result) == len(result.all_outputs())

    def test_engine_without_filesystem_rejects_file_writes(self):
        def mapper(payload, ctx):
            ctx.write_file("/out", b"data")

        with pytest.raises(MapReduceError, match="no filesystem"):
            MapReduceEngine(nodes=["n1"]).run(
                JobConf("writes", mapper), make_splits(["x"])
            )


def pipeline_fingerprint(reference, ref_index, pairs, policy):
    """Run the full five-round pipeline and serialize everything it
    produced: every HDFS file plus the final variant lines."""
    result = GesallPipeline(
        reference,
        index=ref_index,
        num_fastq_partitions=4,
        num_reducers=3,
        policy=policy,
    ).run(pairs)
    files = {
        f.path: result.hdfs.get(f.path) for f in result.hdfs.files()
    }
    variants = [v.to_line() for v in result.variants]
    transform = {
        name: (acct.bytes_to_program, acct.bytes_from_program,
               acct.invocations)
        for name, acct in result.rounds.transform.items()
    }
    return files, variants, transform


class TestCrossExecutorDeterminism:
    """The acceptance property: all five Gesall rounds produce
    byte-identical outputs no matter which executor ran them."""

    @pytest.fixture(scope="class")
    def serial_run(self, reference, ref_index, pairs):
        return pipeline_fingerprint(
            reference, ref_index, pairs, ExecutionPolicy.serial()
        )

    def test_thread_executor_matches_serial(
        self, reference, ref_index, pairs, serial_run
    ):
        threaded = pipeline_fingerprint(
            reference, ref_index, pairs,
            ExecutionPolicy.threads(max_workers=4),
        )
        assert threaded == serial_run

    @needs_fork
    def test_process_executor_matches_serial(
        self, reference, ref_index, pairs, serial_run
    ):
        forked = pipeline_fingerprint(
            reference, ref_index, pairs,
            ExecutionPolicy.processes(max_workers=2),
        )
        assert forked == serial_run

    @needs_fork
    def test_pool_executor_matches_serial(
        self, reference, ref_index, pairs, serial_run
    ):
        pooled = pipeline_fingerprint(
            reference, ref_index, pairs,
            ExecutionPolicy.pooled(max_workers=2),
        )
        assert pooled == serial_run

    @needs_fork
    def test_elastic_executor_matches_serial(
        self, reference, ref_index, pairs, serial_run
    ):
        elastic = pipeline_fingerprint(
            reference, ref_index, pairs,
            ExecutionPolicy.elastic(max_workers=3, min_workers=1),
        )
        assert elastic == serial_run

    def test_faulty_run_matches_serial(
        self, reference, ref_index, pairs, serial_run
    ):
        """Injected failures, absorbed by retries, change nothing."""
        faulty = pipeline_fingerprint(
            reference, ref_index, pairs,
            ExecutionPolicy.threads(
                max_workers=2, fault_rate=0.2, fault_seed=11,
                task_retries=10, retry_backoff=0.0,
            ),
        )
        assert faulty == serial_run


@needs_fork
def test_process_pool_smoke():
    """Minimal end-to-end check that fork-based execution works; run in
    CI to catch platform-specific process-pool regressions."""
    hdfs = Hdfs(["n0", "n1"], replication=1)

    def mapper(payload, ctx):
        ctx.write_file(f"/smoke/{payload}", payload.encode())
        ctx.attach("seen", payload)
        ctx.emit(payload, len(payload))

    engine = MapReduceEngine(
        nodes=hdfs.nodes,
        policy=ExecutionPolicy.processes(max_workers=2),
        filesystem=hdfs,
    )
    result = engine.run(
        JobConf("smoke", mapper), make_splits(["alpha", "beta", "gamma"])
    )
    assert [k for k, _ in result.all_outputs()] == ["alpha", "beta", "gamma"]
    assert result.attachments["seen"] == ["alpha", "beta", "gamma"]
    for name in ("alpha", "beta", "gamma"):
        assert hdfs.get(f"/smoke/{name}") == name.encode()
