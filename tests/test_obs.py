"""Tests for the observability layer: spans, metrics, exporters.

Covers the recorder in isolation, the engine's task instrumentation
under all three executors (spans from forked workers must stitch back
identically), and the full five-round traced pipeline the ``repro
trace`` subcommand runs.
"""

from __future__ import annotations

import json

import pytest

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.executors import fork_available
from repro.mapreduce.history import JobHistory, TaskAttempt
from repro.mapreduce.job import JobConf, TaskContext, make_splits
from repro.mapreduce.policy import ExecutionPolicy
from repro.obs.export import (
    render_timeline,
    to_chrome_trace,
    to_jsonl_lines,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NULL_SPAN,
    ObsConfig,
    Span,
    TraceRecorder,
)
from repro.pipeline.parallel import GesallPipeline

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

ALL_POLICIES = [
    ExecutionPolicy.serial(),
    ExecutionPolicy.threads(max_workers=2),
    pytest.param(ExecutionPolicy.processes(max_workers=2), marks=needs_fork),
]


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("reads")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("reads") is counter
        gauge = registry.gauge("depth")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == [0.1, 1.0]
        assert snap["counts"] == [1, 2, 1]  # <=0.1, <=1.0, overflow
        assert snap["count"] == 4
        assert hist.mean == pytest.approx(6.05 / 4)

    def test_histogram_boundary_lands_in_its_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("edge", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.snapshot()["counts"] == [1, 0, 0]

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(7)
        snap = registry.as_dict()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"]["b"] == 2
        assert snap["gauges"]["g"] == 7

    def test_null_metrics_share_one_instrument(self):
        assert NULL_METRICS.counter("x") is NULL_METRICS.counter("y")
        assert NULL_METRICS.counter("x") is NULL_METRICS.histogram("z")
        NULL_METRICS.counter("x").inc(100)
        assert NULL_METRICS.as_dict()["counters"] == {}
        assert NULL_METRICS.timeseries("t") is NULL_METRICS.counter("x")
        assert NULL_METRICS.all_timeseries() == []
        assert NULL_METRICS.as_dict()["timeseries"] == []

    def test_gauge_add_is_thread_safe(self):
        import threading

        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        counter = registry.counter("ops")

        def hammer():
            for _ in range(5_000):
                gauge.add(1.0)
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Lost updates under a racy read-modify-write would land short.
        assert gauge.value == 20_000.0
        assert counter.value == 20_000

    def test_timeseries_append_and_snapshot(self):
        registry = MetricsRegistry()
        series = registry.timeseries("proc.rss_bytes", worker="w0")
        assert registry.timeseries("proc.rss_bytes", worker="w0") is series
        assert registry.timeseries("proc.rss_bytes", worker="w1") is not series
        series.append(1.0, 100.0)
        series.append(0.5, 50.0, tags={"phase": "map"})
        assert len(series) == 2
        # points() returns a time-ordered snapshot regardless of
        # append order.
        points = series.points()
        assert [point[0] for point in points] == [0.5, 1.0]
        assert series.values() == [50.0, 100.0]
        snap = series.snapshot()
        assert snap["name"] == "proc.rss_bytes"
        assert snap["tags"] == {"worker": "w0"}
        assert snap["points"][0]["tags"] == {"phase": "map"}
        assert len(registry.all_timeseries()) == 2
        assert len(registry.as_dict()["timeseries"]) == 2

    def test_timeseries_concurrent_appends(self):
        import threading

        registry = MetricsRegistry()
        series = registry.timeseries("proc.cpu_percent", worker="w0")

        def feed(offset):
            for index in range(2_000):
                series.append(offset + index, float(index))

        threads = [threading.Thread(target=feed, args=(i * 10_000,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(series) == 8_000


class TestRecorder:
    def test_span_nesting_depth(self):
        recorder = TraceRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        by_name = {span.name: span for span in recorder.spans()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner"].start >= by_name["outer"].start
        assert by_name["inner"].end <= by_name["outer"].end

    def test_span_attrs_and_set(self):
        recorder = TraceRecorder()
        with recorder.span("r", category="round", track="driver", a=1) as span:
            span.set(b=2)
        (span,) = recorder.spans()
        assert span.category == "round"
        assert span.track == "driver"
        assert span.attrs == {"a": 1, "b": 2}

    def test_span_records_error_attr(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            with recorder.span("boom"):
                raise ValueError("nope")
        (span,) = recorder.spans()
        assert span.attrs["error"] == "ValueError"

    def test_ingest_and_totals(self):
        recorder = TraceRecorder()
        base = recorder.epoch
        recorder.ingest([
            Span("map", "phase", base + 0.0, base + 1.0, track="t1"),
            Span("map", "phase", base + 1.0, base + 3.0, track="t2"),
            Span("spill", "phase", base + 3.0, base + 3.5, track="t2"),
        ])
        assert recorder.phase_totals() == pytest.approx(
            {"map": 3.0, "spill": 0.5}
        )
        assert recorder.category_totals()["phase"] == pytest.approx(3.5)
        assert recorder.horizon() == pytest.approx(3.5)

    def test_null_recorder_is_allocation_free(self):
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")
        assert NULL_RECORDER.span("a") is NULL_SPAN
        with NULL_RECORDER.span("a") as span:
            span.set(x=1)
        assert NULL_RECORDER.spans() == []
        assert NULL_RECORDER.horizon() == 0.0

    def test_obs_config_builds_recorders(self):
        assert ObsConfig().build_recorder() is NULL_RECORDER
        assert ObsConfig(enabled=False).build_recorder() is NULL_RECORDER
        recorder = ObsConfig(enabled=True).build_recorder()
        assert recorder.enabled and recorder.trace_tasks
        off = ObsConfig(enabled=True, trace_tasks=False).build_recorder()
        assert off.enabled and not off.trace_tasks
        with pytest.raises(Exception):
            ObsConfig().enabled = True  # frozen

    def test_span_pickles_across_fork_boundary(self):
        import pickle

        span = Span("s", "phase", 1.0, 2.0, track="t", depth=1,
                    attrs={"k": 3})
        clone = pickle.loads(pickle.dumps(span))
        assert clone.to_dict() == span.to_dict()


class TestExport:
    def _recorder(self):
        recorder = TraceRecorder()
        with recorder.span("outer", category="round", track="driver"):
            with recorder.span("inner", category="phase", track="driver"):
                pass
        return recorder

    def test_chrome_trace_structure(self):
        trace = to_chrome_trace(self._recorder())
        events = trace["traceEvents"]
        x_events = [e for e in events if e["ph"] == "X"]
        m_events = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in x_events} == {"outer", "inner"}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in x_events)
        # One thread_name metadata event per track, plus process_name.
        names = [e["args"]["name"] for e in m_events]
        assert "repro" in names and "driver" in names
        json.dumps(trace)  # must be serializable as-is

    def test_chrome_trace_one_tid_per_track(self):
        recorder = TraceRecorder()
        base = recorder.epoch
        recorder.ingest([
            Span("a", "s", base, base + 1, track="w1"),
            Span("b", "s", base, base + 1, track="w2"),
            Span("c", "s", base, base + 1, track="w1"),
        ])
        x_events = [
            e for e in to_chrome_trace(recorder)["traceEvents"]
            if e["ph"] == "X"
        ]
        tids = {e["name"]: e["tid"] for e in x_events}
        assert tids["a"] == tids["c"] != tids["b"]

    def test_jsonl_round_trip(self):
        lines = to_jsonl_lines(self._recorder())
        records = [json.loads(line) for line in lines]
        spans = [r for r in records if r["type"] == "span"]
        assert {s["name"] for s in spans} == {"outer", "inner"}
        assert records[-1]["type"] == "metrics"
        assert set(records[-1]["metrics"]) == {
            "counters", "gauges", "histograms", "timeseries",
        }

    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(self._recorder(), str(tmp_path / "t.json"))
        with open(path) as handle:
            assert "traceEvents" in json.load(handle)

    def test_render_timeline(self):
        out = render_timeline(self._recorder(), width=20)
        lines = out.splitlines()
        assert "round" in out and "phase" in out
        # header + one strip per category + footer
        assert len(lines) == 4

    def test_render_timeline_empty(self):
        assert render_timeline(TraceRecorder()) == "(no spans recorded)"
        assert render_timeline(NULL_RECORDER) == "(no spans recorded)"

    def test_empty_recorder_exports(self):
        recorder = TraceRecorder()
        trace = to_chrome_trace(recorder)
        assert [e["ph"] for e in trace["traceEvents"]] == ["M"]
        lines = to_jsonl_lines(recorder)
        assert len(lines) == 1
        assert json.loads(lines[0])["type"] == "metrics"

    def _dead_worker_recorder(self):
        """A recorder holding a span a dead worker never closed."""
        recorder = TraceRecorder()
        base = recorder.epoch
        recorder.ingest([
            Span("map", "phase", base + 0.0, base + 1.0, track="w0"),
            Span("map", "phase", base + 0.2, None, track="w1"),
        ])
        return recorder

    def test_dead_worker_span_chrome_trace(self):
        trace = to_chrome_trace(self._dead_worker_recorder())
        trace = json.loads(json.dumps(trace))  # must stay serialisable
        incomplete = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["args"].get("incomplete")
        ]
        assert len(incomplete) == 1
        assert incomplete[0]["dur"] == 0.0

    def test_dead_worker_span_jsonl_and_aggregates(self):
        recorder = self._dead_worker_recorder()
        records = [json.loads(line) for line in to_jsonl_lines(recorder)]
        open_spans = [r for r in records
                      if r["type"] == "span" and r["end"] is None]
        assert len(open_spans) == 1
        # The endless span contributes zero duration and its start to
        # the horizon, rather than a TypeError.
        assert recorder.horizon() == pytest.approx(1.0)
        assert recorder.phase_totals()["map"] == pytest.approx(1.0)

    def test_dead_worker_span_timeline(self):
        out = render_timeline(self._dead_worker_recorder(), width=10)
        assert "phase" in out and "(no spans recorded)" not in out


def _traced_job():
    def mapper(payload, ctx):
        with ctx.span("chew", items=len(payload)) as span:
            total = sum(payload)
            span.set(total=total)
        for item in payload:
            ctx.emit(item % 3, item)

    def reducer(key, values, ctx):
        ctx.emit(key, sum(values))

    return JobConf("trace-demo", mapper, reducer, num_reducers=2)


def _run_traced(policy):
    recorder = ObsConfig(enabled=True).build_recorder()
    engine = MapReduceEngine(nodes=["n0", "n1"], policy=policy,
                             recorder=recorder)
    splits = make_splits([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
    result = engine.run(_traced_job(), splits)
    return recorder, result


class TestEngineTracing:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.executor)
    def test_span_categories_and_stitching(self, policy):
        recorder, result = _run_traced(policy)
        spans = recorder.spans()
        categories = {}
        for span in spans:
            categories[span.category] = categories.get(span.category, 0) + 1
        # 1 job, 2 waves, 3 map tasks, 2 reduce tasks, 3 in-task spans.
        assert categories["job"] == 1
        assert categories["wave"] == 2
        assert categories["map-task"] == 3
        assert categories["reduce-task"] == 2
        assert categories["task"] == 3  # ctx.span("chew") per map task
        assert categories["phase"] >= 3 + 2  # map each; shuffle+ per reduce
        chews = [s for s in spans if s.name == "chew"]
        assert all(s.attrs["total"] in (6, 15, 24) for s in chews)
        # Stitched spans are re-homed onto the worker's track.
        task_tracks = {
            s.track for s in spans if s.category == "map-task"
        }
        assert {s.track for s in chews} <= task_tracks

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.executor)
    def test_measured_phases_and_queue_times(self, policy):
        recorder, result = _run_traced(policy)
        for attempt in result.history.tasks:
            assert attempt.run_seconds > 0.0
            assert attempt.queued_seconds >= 0.0
            assert attempt.phases, attempt.task_id
            for start, end in attempt.phases.values():
                assert 0.0 <= start <= end
        task_spans = [
            s for s in recorder.spans() if s.category.endswith("-task")
        ]
        assert all(s.attrs["queue_wait_ms"] >= 0.0 for s in task_spans)
        assert all(s.attrs["node"] in ("n0", "n1") for s in task_spans)
        hist = recorder.metrics.histogram("task.run_seconds")
        assert hist.count == 5

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.executor)
    def test_export_round_trip_all_executors(self, policy, tmp_path):
        recorder, _ = _run_traced(policy)
        path = write_chrome_trace(recorder, str(tmp_path / "trace.json"))
        with open(path) as handle:
            trace = json.load(handle)
        x_names = sorted(
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        )
        # Span *names* are executor-independent even though timings and
        # worker tracks differ; serial is the reference.
        ref, _ = _run_traced(ExecutionPolicy.serial())
        assert x_names == sorted(s.name for s in ref.spans())

    def test_outputs_identical_traced_or_not(self):
        policy = ExecutionPolicy.serial()
        _, traced = _run_traced(policy)
        engine = MapReduceEngine(nodes=["n0", "n1"], policy=policy)
        splits = make_splits([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        untraced = engine.run(_traced_job(), splits)
        assert traced.all_outputs() == untraced.all_outputs()

    def test_untraced_run_records_nothing(self):
        engine = MapReduceEngine(nodes=["n0", "n1"],
                                 policy=ExecutionPolicy.serial())
        splits = make_splits([[1, 2, 3]])
        result = engine.run(_traced_job(), splits)
        assert engine.recorder is NULL_RECORDER
        assert engine.recorder.spans() == []
        for attempt in result.history.tasks:
            assert attempt.run_seconds == 0.0 and not attempt.phases

    def test_task_context_span_disabled_is_null(self):
        context = TaskContext("t-0", "n0")
        assert context.span("x") is NULL_SPAN
        assert context.spans == []


class TestJobHistoryIndex:
    def test_find_uses_index_first_add_wins(self):
        history = JobHistory("job")
        first = TaskAttempt("m-0", "map", "n0")
        dup = TaskAttempt("m-0", "map", "n1")
        history.add(first)
        history.add(dup)
        assert history.find("m-0") is first
        assert history.find("missing") is None

    def test_summary_excludes_speculative_from_primaries(self):
        history = JobHistory("job")
        primary = TaskAttempt("m-0", "map", "n0")
        primary.input_records = 10
        primary.output_records = 8
        primary.attempts = 2
        primary.injected_faults = 1
        spec = TaskAttempt("m-0-speculative", "map", "n1")
        spec.speculative = True
        spec.input_records = 10
        reduce = TaskAttempt("r-0", "reduce", "n0")
        reduce.run_seconds = 1.5
        for task in (primary, spec, reduce):
            history.add(task)
        summary = history.summary()
        assert summary["tasks"] == 2
        assert summary["maps"] == 1 and summary["reduces"] == 1
        assert summary["input_records"] == 10  # speculative not counted
        assert summary["speculative"] == 1
        assert summary["retried_tasks"] == 1
        assert summary["total_attempts"] == 4
        assert summary["injected_faults"] == 1
        assert summary["run_seconds"] == pytest.approx(1.5)
        assert summary["nodes"] == 2


@needs_fork
class TestTracedPipelineAcceptance:
    """The ``repro trace`` scenario: five rounds, process executor."""

    @pytest.fixture(scope="class")
    def traced_run(self, reference, ref_index, pairs):
        pipeline = GesallPipeline(
            reference, index=ref_index, num_fastq_partitions=5,
            num_reducers=2,
            policy=ExecutionPolicy.processes(max_workers=2),
            obs=ObsConfig(enabled=True),
        )
        return pipeline.run(pairs)

    def test_round_spans_cover_all_rounds(self, traced_run):
        spans = traced_run.recorder.spans()
        rounds = [s for s in spans if s.category == "round"]
        assert len(rounds) >= 5
        names = {s.name for s in rounds}
        assert {"round:round1", "round:round2", "round:round3",
                "round:round4", "round:round5"} <= names
        for span in rounds:
            assert span.attrs["records_in"] >= 0
            assert span.duration > 0.0
        (pipeline_span,) = [s for s in spans if s.category == "pipeline"]
        assert pipeline_span.duration >= max(r.duration for r in rounds)

    def test_task_phase_spans_present(self, traced_run):
        totals = traced_run.recorder.phase_totals()
        assert "map" in totals and totals["map"] > 0.0
        assert {"shuffle", "merge", "reduce"} <= set(totals)

    def test_chrome_trace_loads(self, traced_run, tmp_path):
        path = write_chrome_trace(
            traced_run.recorder, str(tmp_path / "trace.json")
        )
        with open(path) as handle:
            trace = json.load(handle)
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert {"pipeline", "round", "job", "wave", "phase"} <= cats

    def test_round_metrics_and_hdfs_counters(self, traced_run):
        counters = traced_run.recorder.metrics.as_dict()["counters"]
        assert counters["round.round1.records_in"] > 0
        assert counters["round.round2.shuffled_bytes"] > 0
        assert counters["hdfs.put.calls"] > 0
        assert counters["hdfs.put.bytes"] > 0
        assert counters["hdfs.get.calls"] > 0

    def test_history_summaries(self, traced_run):
        for key, job_result in traced_run.rounds.results.items():
            summary = job_result.history.summary()
            assert summary["tasks"] > 0, key
            assert summary["run_seconds"] > 0.0, key

    def test_timeline_renders(self, traced_run):
        out = render_timeline(traced_run.recorder, width=30)
        assert "round" in out and "phase" in out

    def test_disabled_pipeline_records_nothing(self, reference, ref_index,
                                               pairs):
        pipeline = GesallPipeline(
            reference, index=ref_index, num_fastq_partitions=3,
            obs=ObsConfig(enabled=False),
        )
        result = pipeline.run(pairs[:40])
        assert result.recorder is NULL_RECORDER
        assert result.recorder.spans() == []
