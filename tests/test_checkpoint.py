"""Checkpoint/resume tests: backends, manifest guards, pipeline resume.

The guarantee under test: after a crash, ``resume=True`` restores the
longest completed *prefix* of rounds byte-identically and re-runs only
what is missing — and refuses checkpoints written by a different input
or pipeline configuration.
"""

import json
import os

import pytest

from repro.chaos import FaultPlan, RaiseInTask
from repro.errors import CheckpointError, MapReduceError, PipelineError
from repro.hdfs.filesystem import Hdfs
from repro.mapreduce.policy import ExecutionPolicy
from repro.obs.recorder import ObsConfig
from repro.pipeline.checkpoint import (
    CheckpointStore,
    HdfsBackend,
    LocalDirectoryBackend,
)
from repro.pipeline.parallel import GesallPipeline

ALL_ROUNDS = ["round1", "round2", "round3", "round4", "round5"]


class TestLocalDirectoryBackend:
    def test_write_read_roundtrip(self, tmp_path):
        backend = LocalDirectoryBackend(str(tmp_path))
        backend.write("blob.bin", b"payload")
        assert backend.read("blob.bin") == b"payload"
        backend.write("blob.bin", b"rewritten")
        assert backend.read("blob.bin") == b"rewritten"

    def test_missing_blob_is_none(self, tmp_path):
        assert LocalDirectoryBackend(str(tmp_path)).read("nope") is None

    def test_writes_leave_no_temp_files(self, tmp_path):
        backend = LocalDirectoryBackend(str(tmp_path))
        for i in range(5):
            backend.write(f"b{i}.bin", b"x" * i)
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]


class TestHdfsBackend:
    def test_write_read_roundtrip(self):
        hdfs = Hdfs(["a", "b"], replication=2)
        backend = HdfsBackend(hdfs, prefix="/ckpt")
        backend.write("blob.bin", b"payload")
        assert backend.read("blob.bin") == b"payload"
        assert hdfs.exists("/ckpt/blob.bin")
        backend.write("blob.bin", b"rewritten")  # overwrite path
        assert backend.read("blob.bin") == b"rewritten"
        assert backend.read("missing.bin") is None


class TestCheckpointStore:
    def seeded_store(self, tmp_path):
        store = CheckpointStore.local(str(tmp_path))
        store.begin("fp", resume=False)
        store.save_round(
            "round1",
            [("/round1/p0", b"alpha", True), ("/round1/p1", b"beta", False)],
            extras={"paths": ["/round1/p0", "/round1/p1"]},
            blobs={"table": b"pickled-table"},
        )
        return store

    def test_save_then_restore_in_a_new_process(self, tmp_path):
        self.seeded_store(tmp_path)
        store = CheckpointStore.local(str(tmp_path))
        assert store.begin("fp", resume=True) == ["round1"]
        assert store.has_round("round1")
        hdfs = Hdfs(["a", "b"], replication=2)
        extras, blobs = store.restore_round("round1", hdfs)
        assert extras == {"paths": ["/round1/p0", "/round1/p1"]}
        assert blobs == {"table": b"pickled-table"}
        assert hdfs.get("/round1/p0") == b"alpha"
        assert hdfs.get_file("/round1/p0").logical_partition is True
        assert hdfs.get_file("/round1/p1").logical_partition is False

    def test_fresh_begin_wipes_previous_rounds(self, tmp_path):
        store = self.seeded_store(tmp_path)
        assert store.begin("fp", resume=False) == []
        assert not store.has_round("round1")

    def test_resume_without_manifest_starts_fresh(self, tmp_path):
        store = CheckpointStore.local(str(tmp_path))
        assert store.begin("fp", resume=True) == []

    def test_restore_unknown_round_raises(self, tmp_path):
        store = self.seeded_store(tmp_path)
        with pytest.raises(CheckpointError, match="no checkpoint"):
            store.restore_round("round9", Hdfs(["a"], replication=1))

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        self.seeded_store(tmp_path)
        store = CheckpointStore.local(str(tmp_path))
        with pytest.raises(CheckpointError, match="different run"):
            store.begin("other-fp", resume=True)

    def test_version_mismatch_refuses_resume(self, tmp_path):
        self.seeded_store(tmp_path)
        manifest = tmp_path / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["version"] = 999
        manifest.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="version"):
            CheckpointStore.local(str(tmp_path)).begin("fp", resume=True)

    def test_unparsable_manifest_raises(self, tmp_path):
        self.seeded_store(tmp_path)
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            CheckpointStore.local(str(tmp_path)).begin("fp", resume=True)

    def test_corrupt_blob_detected_by_crc(self, tmp_path):
        self.seeded_store(tmp_path)
        (tmp_path / "round1-f0000.bin").write_bytes(b"rotten")
        store = CheckpointStore.local(str(tmp_path))
        store.begin("fp", resume=True)
        with pytest.raises(CheckpointError, match="corrupt"):
            store.restore_round("round1", Hdfs(["a"], replication=1))

    def test_missing_blob_detected(self, tmp_path):
        self.seeded_store(tmp_path)
        (tmp_path / "round1-b-table.bin").unlink()
        store = CheckpointStore.local(str(tmp_path))
        store.begin("fp", resume=True)
        with pytest.raises(CheckpointError, match="missing"):
            store.restore_round("round1", Hdfs(["a"], replication=1))


NODES = [f"node{i:02d}" for i in range(4)]


def build(reference, ref_index, num_reducers=2, **kwargs):
    return GesallPipeline(
        reference, index=ref_index, nodes=NODES,
        num_fastq_partitions=3, num_reducers=num_reducers, **kwargs,
    )


def vcf_lines(result):
    return [v.to_line() for v in result.variants]


@pytest.fixture(scope="module")
def some_pairs(pairs):
    return pairs[:160]


@pytest.fixture(scope="module")
def clean_ckpt(tmp_path_factory, reference, ref_index, some_pairs):
    """One checkpointed clean run, shared by the resume tests."""
    root = str(tmp_path_factory.mktemp("ckpt"))
    result = build(reference, ref_index, checkpoint_dir=root).run(some_pairs)
    return root, result


class TestPipelineResume:
    def test_checkpoint_and_dir_are_mutually_exclusive(
        self, reference, ref_index
    ):
        with pytest.raises(PipelineError, match="not both"):
            build(
                reference, ref_index,
                checkpoint=CheckpointStore.local("/tmp/x"),
                checkpoint_dir="/tmp/y",
            )

    def test_resume_restores_the_whole_completed_run(
        self, reference, ref_index, some_pairs, clean_ckpt
    ):
        root, first = clean_ckpt
        second = build(
            reference, ref_index, checkpoint_dir=root,
            obs=ObsConfig(enabled=True),
        ).run(some_pairs, resume=True)
        assert second.resumed_rounds == ALL_ROUNDS
        assert second.rounds.results == {}  # nothing re-executed
        assert vcf_lines(second) == vcf_lines(first)
        # Restored round outputs are byte-identical to the original's.
        prefixes = ("/round1/", "/round2/", "/round3/", "/round4/")
        restored_paths = [
            f.path for f in first.hdfs.files() if f.path.startswith(prefixes)
        ]
        assert restored_paths
        for path in restored_paths:
            assert second.hdfs.get(path) == first.hdfs.get(path)
        # The trace shows five restore spans and zero save spans.
        names = [
            s.name for s in second.recorder.spans()
            if s.category == "checkpoint"
        ]
        assert names == [f"checkpoint:restore:{k}" for k in ALL_ROUNDS]
        metrics = second.recorder.metrics
        assert metrics.counter("checkpoint.rounds_restored").value == 5
        assert metrics.counter("checkpoint.rounds_saved").value == 0

    def test_resume_with_different_config_is_refused(
        self, reference, ref_index, some_pairs, clean_ckpt
    ):
        root, _ = clean_ckpt
        with pytest.raises(CheckpointError, match="different run"):
            build(
                reference, ref_index, num_reducers=3, checkpoint_dir=root
            ).run(some_pairs, resume=True)

    def test_crash_in_round4_resumes_running_only_the_tail(
        self, reference, ref_index, some_pairs, clean_ckpt, tmp_path
    ):
        _, clean = clean_ckpt
        root = str(tmp_path / "ckpt")
        plan = FaultPlan(events=(
            RaiseInTask("round4-sort-m-00000", attempt=1),
        ))
        crashing = ExecutionPolicy(
            task_retries=0, retry_backoff=0.0, fault_plan=plan,
            sleep=lambda _s: None,
        )
        with pytest.raises(MapReduceError, match="after 1 attempt"):
            build(
                reference, ref_index, checkpoint_dir=root, policy=crashing
            ).run(some_pairs)
        # Rounds 1-3 are durable; the resumed run executes only 4 and 5.
        manifest = json.loads(
            (tmp_path / "ckpt" / "manifest.json").read_text()
        )
        assert manifest["order"] == ["round1", "round2", "round3"]
        resumed = build(reference, ref_index, checkpoint_dir=root).run(
            some_pairs, resume=True
        )
        assert resumed.resumed_rounds == ["round1", "round2", "round3"]
        executed = {
            k for k in resumed.rounds.results if k.startswith("round")
        }
        assert executed == {"round4", "round5"}
        assert vcf_lines(resumed) == vcf_lines(clean)
        # The finished resume run checkpointed the missing rounds too.
        manifest = json.loads(
            (tmp_path / "ckpt" / "manifest.json").read_text()
        )
        assert manifest["order"] == ALL_ROUNDS

    def test_hdfs_backend_survives_into_a_second_run(
        self, reference, ref_index, some_pairs, clean_ckpt
    ):
        _, clean = clean_ckpt
        backing = Hdfs(["s0", "s1"], replication=2)
        first = build(
            reference, ref_index,
            checkpoint=CheckpointStore.hdfs(backing, prefix="/ckpt"),
        ).run(some_pairs)
        assert vcf_lines(first) == vcf_lines(clean)
        second = build(
            reference, ref_index,
            checkpoint=CheckpointStore.hdfs(backing, prefix="/ckpt"),
        ).run(some_pairs, resume=True)
        assert second.resumed_rounds == ALL_ROUNDS
        assert vcf_lines(second) == vcf_lines(clean)
