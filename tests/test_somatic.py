"""Tests for the MutectLite somatic caller and tumor simulation."""

import pytest

from repro.align.index import ReferenceIndex
from repro.align.pairing import PairedEndAligner
from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import SamRecord, encode_quals
from repro.genome.reference import ReferenceGenome
from repro.genome.simulate import (
    DonorSimulationConfig,
    ReadSimulationConfig,
    ReferenceSimulationConfig,
    SomaticSimulationConfig,
    simulate_donor,
    simulate_reads,
    simulate_reference,
    simulate_tumor,
    simulate_tumor_reads,
)
from repro.variants.pileup import build_pileup
from repro.variants.somatic import (
    MutectConfig,
    MutectLite,
    normal_lod,
    tumor_lod,
)

REF = ReferenceGenome({"chr1": "ACGTACGTAC" * 40})


def reads(pos, alt, n_ref, n_alt, tag=""):
    start = pos - 5
    length = 20
    ref_seq = REF.fetch("chr1", start, start + length)
    alt_seq = ref_seq[:5] + alt + ref_seq[6:]
    out = []
    for i in range(n_ref):
        bits = F.REVERSE if i % 2 else 0
        out.append(SamRecord(
            f"{tag}ref{i}", F.SamFlags(bits), "chr1", start, 60,
            Cigar.parse(f"{length}M"), seq=ref_seq,
            qual=encode_quals([35] * length),
        ))
    for i in range(n_alt):
        bits = F.REVERSE if i % 2 else 0
        out.append(SamRecord(
            f"{tag}alt{i}", F.SamFlags(bits), "chr1", start, 60,
            Cigar.parse(f"{length}M"), seq=alt_seq,
            qual=encode_quals([35] * length),
        ))
    return out


def column_at(records, pos):
    return next(c for c in build_pileup(records, REF) if c.pos == pos)


class TestLodScores:
    def test_tumor_lod_positive_with_alt_evidence(self):
        column = column_at(reads(100, "T", n_ref=12, n_alt=6), 100)
        ref_base = REF.base_at("chr1", 100)
        assert tumor_lod(column, ref_base, "T") > 6.3

    def test_tumor_lod_near_zero_without_evidence(self):
        column = column_at(reads(100, "T", n_ref=18, n_alt=0), 100)
        ref_base = REF.base_at("chr1", 100)
        assert tumor_lod(column, ref_base, "T") < 1.0

    def test_normal_lod_positive_for_clean_normal(self):
        column = column_at(reads(100, "T", n_ref=18, n_alt=0), 100)
        ref_base = REF.base_at("chr1", 100)
        assert normal_lod(column, ref_base, "T") > 2.3

    def test_normal_lod_negative_for_germline_het(self):
        column = column_at(reads(100, "T", n_ref=9, n_alt=9), 100)
        ref_base = REF.base_at("chr1", 100)
        assert normal_lod(column, ref_base, "T") < 0.0


class TestMutectLite:
    def test_somatic_site_called(self):
        tumor = reads(100, "T", n_ref=12, n_alt=8, tag="t")
        normal = reads(100, "T", n_ref=15, n_alt=0, tag="n")
        calls = MutectLite(REF).call(tumor, normal)
        assert len(calls) == 1
        call = calls[0]
        assert call.pos == 100 and call.alt == "T"
        assert call.info["AF"] == pytest.approx(0.4, abs=0.01)
        assert call.info["TLOD"] > 6.3

    def test_germline_site_rejected(self):
        tumor = reads(100, "T", n_ref=10, n_alt=10, tag="t")
        normal = reads(100, "T", n_ref=8, n_alt=8, tag="n")
        assert MutectLite(REF).call(tumor, normal) == []

    def test_no_normal_coverage_no_call(self):
        tumor = reads(100, "T", n_ref=12, n_alt=8, tag="t")
        assert MutectLite(REF).call(tumor, []) == []

    def test_low_depth_tumor_skipped(self):
        tumor = reads(100, "T", n_ref=2, n_alt=2, tag="t")
        normal = reads(100, "T", n_ref=15, n_alt=0, tag="n")
        assert MutectLite(REF).call(tumor, normal) == []

    def test_low_fraction_subclone_called_with_enough_reads(self):
        tumor = reads(100, "T", n_ref=40, n_alt=7, tag="t")
        normal = reads(100, "T", n_ref=20, n_alt=0, tag="n")
        calls = MutectLite(REF).call(tumor, normal)
        assert len(calls) == 1
        assert calls[0].info["AF"] == pytest.approx(7 / 47, abs=0.01)

    def test_noise_not_called(self):
        tumor = reads(100, "T", n_ref=28, n_alt=2, tag="t")
        normal = reads(100, "T", n_ref=20, n_alt=0, tag="n")
        assert MutectLite(REF).call(tumor, normal) == []


class TestTumorSimulation:
    @pytest.fixture(scope="class")
    def tumor_setup(self):
        reference = simulate_reference(
            ReferenceSimulationConfig(contig_lengths={"chr1": 12000}, seed=81)
        )
        donor = simulate_donor(reference, DonorSimulationConfig(seed=82))
        tumor = simulate_tumor(
            donor, SomaticSimulationConfig(somatic_snvs=6, purity=0.8, seed=83)
        )
        return reference, donor, tumor

    def test_somatic_sites_avoid_germline_and_hard_regions(self, tumor_setup):
        reference, donor, tumor = tumor_setup
        germline = {(v.chrom, v.pos) for v in donor.truth_variants}
        for somatic in tumor.somatic_truth:
            assert (somatic.chrom, somatic.pos) not in germline
            assert not reference.in_hard_region(somatic.chrom, somatic.pos)

    def test_tumor_haplotype_differs_only_at_somatic_sites(self, tumor_setup):
        _, donor, tumor = tumor_setup
        tumor_a = tumor.tumor_haplotypes[0]["chr1"]
        normal_a = donor.haplotypes[0]["chr1"]
        diffs = [
            i + 1 for i, (a, b) in enumerate(zip(tumor_a, normal_a)) if a != b
        ]
        assert len(diffs) == len(tumor.somatic_truth)

    def test_end_to_end_somatic_detection(self, tumor_setup):
        reference, donor, tumor = tumor_setup
        normal_pairs, _ = simulate_reads(
            donor, ReadSimulationConfig(coverage=25.0, seed=84)
        )
        tumor_pairs, _ = simulate_tumor_reads(
            tumor, ReadSimulationConfig(coverage=30.0, seed=85,
                                        sample_name="TUM1")
        )
        aligner = PairedEndAligner(ReferenceIndex(reference))
        normal_records = aligner.align_all(normal_pairs, batch_size=800)
        tumor_records = aligner.align_all(tumor_pairs, batch_size=800)
        calls = MutectLite(reference).call(tumor_records, normal_records)
        called = {c.site_key() for c in calls}
        truth = tumor.somatic_sites()
        sensitivity = len(called & truth) / len(truth)
        assert sensitivity >= 0.65
        false_positives = len(called - truth)
        assert false_positives <= 2
        # Allele fractions reflect the 0.8 purity (expected ~0.4).
        true_calls = [c for c in calls if c.site_key() in truth]
        mean_af = sum(c.info["AF"] for c in true_calls) / len(true_calls)
        assert 0.25 < mean_af < 0.55
