"""Motivation tests and simulator property tests.

The motivation tests demonstrate *why* Gesall's storage substrate and
logical partitioning exist, by showing what breaks without them — the
contrast the paper draws with Crossbow/HadoopBAM in its related work
("does not support logical partitioning to ensure correct execution").
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.fix_mate import FixMateInformation
from repro.cluster.fluid import FluidSimulator, Phase, Resource, SimTask
from repro.cluster.hardware import CLUSTER_A
from repro.cluster.mrsim import (
    ClusterModel,
    MapTaskSpec,
    RoundSpec,
    simulate_round,
)
from repro.errors import BamError, PipelineError
from repro.formats.bam import bam_bytes, read_bam
from repro.formats.sam import SamHeader
from repro.hdfs.blocks import split_into_blocks


class TestWhyLogicalPartitioningMatters:
    """What happens if you do what the paper says NOT to do."""

    def test_naive_block_split_breaks_bam_parsing(self, sam_header, aligned):
        """'It is incorrect to let HDFS split a bam file into physical
        blocks and distribute them to the nodes. This naive approach ...
        breaks the correct bam format assumed in the analysis programs'
        (section 3.1).  A block read in isolation is not a BAM file."""
        data = bam_bytes(sam_header, aligned[:300], chunk_bytes=2048)
        blocks = split_into_blocks(data, 4096)
        assert len(blocks) > 2
        # The first block parses only until its truncated tail chunk...
        with pytest.raises(BamError):
            read_bam(blocks[0])
        # ...and interior blocks do not even start with the magic.
        with pytest.raises(BamError):
            read_bam(blocks[1])

    def test_physical_partitioning_splits_pairs(self, sam_header, aligned):
        """Without read-name logical partitioning, a split boundary
        falls between the two reads of a pair and FixMateInformation's
        assumptions are violated (the correctness issue Gesall's
        logical partitions exist to prevent)."""
        # Aligned output interleaves pair ends; an odd-length prefix
        # necessarily ends mid-pair — exactly what a byte-offset split
        # does to a record stream.
        records = [r.copy() for r in aligned[:151]]
        with pytest.raises(PipelineError):
            FixMateInformation().run(sam_header, records)

    def test_logical_partitioning_fixes_it(self, sam_header, aligned):
        """The same data grouped by read name processes cleanly."""
        from repro.gdpt.partitioner import GroupPartitioner, read_name_key
        records = [r.copy() for r in aligned[:300]]
        partitions = GroupPartitioner(read_name_key, 4).split(records)
        total_out = 0
        for partition in partitions:
            _, out = FixMateInformation().run(sam_header, partition)
            total_out += len(out)
        assert total_out == len(records)


# ---------------------------------------------------------------------------
# Fluid simulator properties
# ---------------------------------------------------------------------------

@given(
    st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=1,
             max_size=12),
    st.floats(min_value=0.5, max_value=8.0),
)
@settings(max_examples=40, deadline=None)
def test_fluid_makespan_bounds(demands, capacity):
    """Makespan is bounded below by total-work/capacity and by the
    largest single demand at full capacity, and above by serial sum."""
    resource = Resource("r", capacity)
    sim = FluidSimulator()
    for index, demand in enumerate(demands):
        sim.start_task(SimTask(f"t{index}", [Phase(resource, demand)]))
    wall = sim.run()
    lower = max(sum(demands) / capacity, max(demands) / capacity)
    upper = sum(demands) / capacity + 1e-6
    assert lower - 1e-6 <= wall <= upper * 1.001 + 1e-6


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=30.0),   # cpu demand
            st.floats(min_value=1.0, max_value=30.0),   # disk demand
        ),
        min_size=1, max_size=8,
    ),
)
@settings(max_examples=30, deadline=None)
def test_fluid_two_resource_conservation(task_demands):
    """Service delivered on each resource equals the demand placed."""
    cpu = Resource("cpu", 4.0)
    disk = Resource("disk", 2.0)
    sim = FluidSimulator()
    for index, (cpu_demand, disk_demand) in enumerate(task_demands):
        sim.start_task(
            SimTask(f"t{index}", [Phase(cpu, cpu_demand),
                                  Phase(disk, disk_demand)])
        )
    wall = sim.run()
    for resource, expected in (
        (cpu, sum(c for c, _ in task_demands)),
        (disk, sum(d for _, d in task_demands)),
    ):
        delivered = sum(
            (t1 - t0) * fraction * resource.capacity
            for t0, t1, fraction in sim.trace.series(resource.name)
        )
        assert delivered == pytest.approx(expected, rel=1e-6)
    assert wall > 0


@given(st.integers(min_value=1, max_value=15), st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=10, deadline=None)
def test_more_nodes_never_slower(nodes, seed):
    """Scale-out monotonicity for a fixed map-only workload."""
    rng = random.Random(seed)
    tasks = [
        MapTaskSpec(
            input_bytes=rng.uniform(1e8, 1e9),
            cpu_core_seconds=rng.uniform(50, 500),
            output_bytes=rng.uniform(1e7, 1e8),
        )
        for _ in range(20)
    ]

    def wall(n):
        cluster = ClusterModel(CLUSTER_A.with_data_nodes(n))
        spec = RoundSpec(
            "mono",
            [MapTaskSpec(t.input_bytes, t.cpu_core_seconds,
                         output_bytes=t.output_bytes) for t in tasks],
            map_slots_per_node=4,
        )
        return simulate_round(cluster, spec).wall_seconds

    small = wall(nodes)
    large = wall(min(15, nodes + 3))
    assert large <= small * 1.001


def test_header_for_motivation(sam_header):
    """Sanity: the shared header covers both contigs of the fixture."""
    assert len(sam_header.sequence_names()) == 2
