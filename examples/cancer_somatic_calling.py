"""Tumor/normal somatic calling: the cancer workload of the paper's intro.

"Some algorithms, such as Mutect and Theta for complex cancer analysis,
alone can take days or weeks to complete on whole genome data"
(section 1).  This example runs that workload end to end at laptop
scale: simulate a matched tumor/normal pair (80 % purity), push both
samples through the Gesall parallel pipeline, and call somatic point
mutations with MutectLite per chromosome partition.

Usage::

    python examples/cancer_somatic_calling.py
"""

from repro import (
    PipelineSpec,
    ReadSimulationConfig,
    ReferenceIndex,
    ReferenceSimulationConfig,
    run_pipeline,
    simulate_donor,
    simulate_reads,
    simulate_reference,
)
from repro.genome.simulate import (
    SomaticSimulationConfig,
    simulate_tumor,
    simulate_tumor_reads,
)
from repro.variants.somatic import MutectLite


def main():
    print("Simulating a matched tumor/normal pair...")
    reference = simulate_reference(
        ReferenceSimulationConfig(
            contig_lengths={"chr1": 14000, "chr2": 10000}, seed=91
        )
    )
    donor = simulate_donor(reference)
    tumor = simulate_tumor(
        donor, SomaticSimulationConfig(somatic_snvs=5, purity=0.8, seed=92)
    )
    print(f"  {len(tumor.somatic_truth)} somatic SNVs planted, "
          f"purity {tumor.purity:.0%} (expected allele fraction "
          f"~{tumor.purity / 2:.0%})")

    normal_pairs, _ = simulate_reads(
        donor, ReadSimulationConfig(coverage=25.0, seed=93, sample_name="NRM1")
    )
    tumor_pairs, _ = simulate_tumor_reads(
        tumor, ReadSimulationConfig(coverage=30.0, seed=94, sample_name="TUM1")
    )
    print(f"  normal: {len(normal_pairs)} pairs at 25x; "
          f"tumor: {len(tumor_pairs)} pairs at 30x")

    print("Running both samples through the Gesall parallel pipeline...")
    index = ReferenceIndex(reference)
    spec = PipelineSpec(
        reference=reference, index=index,
        num_fastq_partitions=8, num_reducers=4,
    )
    normal = run_pipeline(spec, normal_pairs)
    tumor_result = run_pipeline(spec, tumor_pairs)

    print("Somatic calling per chromosome partition (MutectLite)...")
    caller = MutectLite(reference)
    calls = caller.call(tumor_result.deduped, normal.deduped)
    truth = tumor.somatic_sites()
    print(f"\n{'site':<18s}{'REF>ALT':>8s}{'AF':>7s}{'TLOD':>8s}"
          f"{'NLOD':>8s}  status")
    for call in calls:
        status = "somatic (TP)" if call.site_key() in truth else "FALSE POS"
        print(f"{call.chrom + ':' + str(call.pos):<18s}"
              f"{call.ref + '>' + call.alt:>8s}"
              f"{call.info['AF']:>7.2f}{call.info['TLOD']:>8.1f}"
              f"{call.info['NLOD']:>8.1f}  {status}")
    called = {c.site_key() for c in calls}
    missed = truth - called
    for site in sorted(missed):
        print(f"{site[0] + ':' + str(site[1]):<18s}{'':>31s}  MISSED")
    tp = len(called & truth)
    print(f"\nsensitivity {tp}/{len(truth)}, "
          f"false positives {len(called - truth)}")
    print("Germline variants are correctly suppressed by the normal-LOD "
          "filter.")


if __name__ == "__main__":
    main()
