"""Quickstart: simulate a genome, run both pipelines, compare outputs.

Runs in well under a minute on a laptop:

1. build a synthetic reference with hard-to-map regions;
2. mutate it into a diploid donor and sequence paired-end reads;
3. run the serial (gold standard) pipeline: Bwa -> cleaning ->
   MarkDuplicates -> Haplotype Caller;
4. run the Gesall parallel pipeline: five MapReduce rounds over an
   in-memory HDFS;
5. compare the two — the headline of the paper's accuracy study.

Usage::

    python examples/quickstart.py
"""

from repro import (
    ErrorDiagnosisToolkit,
    PipelineSpec,
    ReadSimulationConfig,
    ReferenceIndex,
    ReferenceSimulationConfig,
    precision_sensitivity,
    run_pipeline,
    run_serial_pipeline,
    simulate_donor,
    simulate_reads,
    simulate_reference,
)


def main():
    print("1. Simulating reference genome with centromeres and blacklists...")
    reference = simulate_reference(
        ReferenceSimulationConfig(contig_lengths={"chr1": 12000, "chr2": 9000})
    )
    print(f"   {reference}")

    print("2. Simulating diploid donor and paired-end reads (15x)...")
    donor = simulate_donor(reference)
    pairs, fragments = simulate_reads(donor, ReadSimulationConfig(coverage=15.0))
    duplicates = sum(1 for fragment in fragments if fragment.is_duplicate)
    print(f"   {len(pairs)} read pairs ({duplicates} PCR duplicates), "
          f"{len(donor.truth_variants)} truth variants")

    index = ReferenceIndex(reference)

    spec = PipelineSpec(
        reference=reference, index=index,
        num_fastq_partitions=8, num_reducers=4,
    )

    print("3. Serial pipeline (single-node gold standard)...")
    serial = run_serial_pipeline(spec, pairs)
    print(f"   {len(serial.alignment)} alignments -> "
          f"{len(serial.variants)} variant calls")

    print("4. Gesall parallel pipeline (5 MapReduce rounds, 4 nodes)...")
    parallel = run_pipeline(spec, pairs)
    print(f"   {len(parallel.alignment)} alignments -> "
          f"{len(parallel.variants)} variant calls")

    print("5. Error diagnosis (Table 8 of the paper):")
    report = ErrorDiagnosisToolkit(reference).diagnose(serial, parallel)
    for row in report.rows:
        impact = row.d_impact if row.d_impact is not None else "-"
        print(f"   {row.stage:<18s} D_count={row.d_count:<8.0f} "
              f"weighted={row.weighted_d_count:<8.2f} D_impact={impact}")

    truth = donor.truth_sites()
    for label, result in (("serial", serial), ("parallel", parallel)):
        precision, sensitivity = precision_sensitivity(result.variants, truth)
        print(f"   {label:<9s} precision={precision:.3f} "
              f"sensitivity={sensitivity:.3f}")

    print("\nDone. Parallelisation changed low-quality placements only —")
    print("the concordant variant calls are the high-confidence ones.")


if __name__ == "__main__":
    main()
