"""Capacity planning for a genome center's compute farm.

The paper's future-work question (4): a pipeline optimizer must balance
a hospital's turnaround-time requirement against the center's
throughput requirement.  This example uses the cluster simulator as
that planning tool:

* sweep the number of disks per node to find the cheapest configuration
  that keeps MarkDuplicates off the disk wall (~1 disk / 100 GB shuffled);
* sweep process/thread splits for alignment mappers;
* sweep node counts to find where adding nodes stops paying
  (resource-efficiency knee);
* estimate whole-pipeline turnaround and genomes/day throughput.

Usage::

    python examples/cluster_capacity_planning.py
"""

from repro import CLUSTER_B, BwaThreadModel, CostModel, NA12878, simulate_round
from repro.cluster.optimizer import PipelineOptimizer, PlanKnobs
from repro.cluster.mrsim import ClusterModel
from repro.cluster.rounds_model import (
    markdup_single_node_seconds,
    round1_spec,
    round2_spec,
    round3_spec,
    round4_spec,
    round5_spec,
)
from repro.cluster.threading import node_throughput, process_thread_configurations
from repro.metrics.perf import format_duration


def main():
    cost = CostModel()
    workload = NA12878

    print("-- 1. Disks per node for MarkDup_reg (785 GB shuffled) --")
    for disks in (1, 2, 3, 4, 6, 8):
        cluster = ClusterModel(CLUSTER_B.with_disks(disks))
        result = simulate_round(
            cluster, round3_spec(cluster, cost, workload, "reg", 384, 16, 16)
        )
        per_disk = workload.markdup_reg_shuffle_bytes / 4 / disks / 1024 ** 3
        marker = " <- knee (~100 GB/disk)" if 90 <= per_disk <= 140 else ""
        print(f"  {disks} disks ({per_disk:5.0f} GB/disk): "
              f"{format_duration(result.wall_seconds)}{marker}")

    print("\n-- 2. Process/thread split for alignment (16-core node) --")
    model = BwaThreadModel(readahead_bytes=64 * 1024 * 1024)
    for processes, threads in process_thread_configurations(16):
        throughput = node_throughput(processes, threads, model)
        bar = "#" * int(round(throughput))
        print(f"  {processes:>2d} mappers x {threads:>2d} threads: "
              f"{throughput:5.2f} thread-equivalents {bar}")

    print("\n-- 3. Scale-out knee for MarkDup_opt --")
    baseline = markdup_single_node_seconds(cost)
    for nodes in (1, 2, 4, 8, 12, 15):
        from repro import CLUSTER_A
        cluster = ClusterModel(CLUSTER_A.with_data_nodes(nodes))
        result = simulate_round(
            cluster,
            round3_spec(cluster, cost, workload, "opt",
                        max(90, nodes * 30), 6, 6),
        )
        speedup = baseline / result.wall_seconds
        efficiency = speedup / (6 * nodes)
        print(f"  {nodes:>2d} nodes: {format_duration(result.wall_seconds):>22s}"
              f"  speedup {speedup:5.1f}  efficiency {efficiency:.3f}")

    print("\n-- 4. Whole-pipeline turnaround on Cluster B --")
    cluster = ClusterModel(CLUSTER_B)
    total = 0.0
    for build in (
        lambda: round1_spec(cluster, cost, workload, 64, 16, 1),
        lambda: round2_spec(cluster, cost, workload, 64, 16, 16),
        lambda: round3_spec(cluster, cost, workload, "opt", 384, 16, 16),
        lambda: round4_spec(cluster, cost, workload, 64, 16, 16),
        lambda: round5_spec(cluster, cost, workload, 16),
    ):
        total += simulate_round(cluster, build()).wall_seconds
    gigabases_per_day = 100 * 86400 / total  # ~100 Gb of sequence / sample
    print(f"  secondary analysis turnaround: {format_duration(total)}")
    print(f"  throughput: {86400 / total:.1f} genomes/day "
          f"(~{gigabases_per_day:.0f} Gigabases/day) on 4 nodes")
    target = 2 * 86400
    verdict = "MEETS" if total <= target else "MISSES"
    print(f"  clinical 1-2 day target: {verdict} "
          f"({total / 86400:.2f} days)")

    print("\n-- 5. Automatic plan optimization (Appendix C question 4) --")
    optimizer = PipelineOptimizer(CLUSTER_B, cost, workload)
    plans = [
        PlanKnobs(16, 1, 64, "opt", 16, 0.05),
        PlanKnobs(16, 1, 64, "opt", 16, 0.80),
        PlanKnobs(4, 4, 64, "opt", 16, 0.05),
        PlanKnobs(16, 1, 64, "reg", 16, 0.05),
        PlanKnobs(16, 1, 128, "opt", 8, 0.05),
    ]
    fastest = optimizer.minimize_turnaround(plans=plans)
    print(f"  fastest plan: {fastest.knobs}")
    print(f"    turnaround {format_duration(fastest.wall_seconds)}, "
          f"cluster efficiency {fastest.cluster_efficiency:.2f}")
    greenest = optimizer.maximize_efficiency(
        deadline_seconds=fastest.wall_seconds * 1.3, plans=plans
    )
    print(f"  most efficient within 1.3x deadline: {greenest.knobs}")
    print(f"    turnaround {format_duration(greenest.wall_seconds)}, "
          f"cluster efficiency {greenest.cluster_efficiency:.2f}")


if __name__ == "__main__":
    main()
