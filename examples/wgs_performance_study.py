"""Reproduce the paper's whole-genome performance study end to end.

Replays the five MapReduce rounds of the Gesall pipeline against the
discrete-event models of both clusters from Table 3, with the NA12878
64x workload parameters, and prints a Table 6/7-style report: wall
clock, speedup over the single-node baselines, resource efficiency, and
the super-linear/sub-linear story of sections 4.3-4.4.

Usage::

    python examples/wgs_performance_study.py
"""

from repro import CLUSTER_A, CLUSTER_B, CostModel, NA12878, simulate_round
from repro.cluster.mrsim import ClusterModel
from repro.cluster.rounds_model import (
    bwa_single_node_seconds,
    cleaning_single_node_seconds,
    markdup_single_node_seconds,
    round1_spec,
    round2_spec,
    round3_spec,
    round4_spec,
    round5_spec,
)
from repro.metrics.perf import format_duration


def section(title):
    print(f"\n{'=' * 66}\n{title}\n{'=' * 66}")


def main():
    cost = CostModel()
    workload = NA12878

    section("Research cluster (Cluster A: 15 nodes x 24 cores, 1 disk)")
    cluster = ClusterModel(CLUSTER_A)

    rounds = []
    r1 = simulate_round(
        cluster, round1_spec(cluster, cost, workload, 90, 6, 4)
    )
    rounds.append(("Round 1  Bwa + SamToBam", r1))
    r2 = simulate_round(
        cluster, round2_spec(cluster, cost, workload, 90, 6, 6)
    )
    rounds.append(("Round 2  cleaning + FixMateInfo", r2))
    r3 = simulate_round(
        cluster, round3_spec(cluster, cost, workload, "opt", 90, 6, 6)
    )
    rounds.append(("Round 3  SortSam + MarkDup_opt", r3))
    r4 = simulate_round(
        cluster, round4_spec(cluster, cost, workload, 90, 6, 6)
    )
    rounds.append(("Round 4  range partition + index", r4))
    r5 = simulate_round(
        cluster, round5_spec(cluster, cost, workload, 6)
    )
    rounds.append(("Round 5  Haplotype Caller (23 parts)", r5))

    total = 0.0
    for name, result in rounds:
        total += result.wall_seconds
        print(f"  {name:<40s}{format_duration(result.wall_seconds):>24s}")
    print(f"  {'TOTAL pipeline':<40s}{format_duration(total):>24s}")
    print(f"  (the serial pipeline needs ~2 weeks on one server)")

    section("Speedup analysis (section 4.3)")
    baseline_24t = bwa_single_node_seconds(cost, CLUSTER_A, 24)
    print(f"  24-thread Bwa baseline: {format_duration(baseline_24t)}")
    print(f"  parallel Round 1:       {format_duration(r1.wall_seconds)}")
    print(f"  speedup {baseline_24t / r1.wall_seconds:.1f}x on 15 nodes "
          f"=> SUPER-LINEAR (limited by Bwa's thread scaling, Fig 5c)")
    for name, result, baseline in (
        ("Round 2", r2, cleaning_single_node_seconds(cost)),
        ("Round 3", r3, markdup_single_node_seconds(cost)),
    ):
        speedup = baseline / result.wall_seconds
        print(f"  {name}: speedup {speedup:.1f}x on 90 tasks "
              f"=> efficiency {speedup / 90:.2f} (sub-linear, shuffle-bound)")

    section("Production cluster (Cluster B: 4 nodes x 16 cores, 6 disks)")
    for label, mappers, threads in (("4x16x1", 16, 1), ("4x4x4", 4, 4)):
        model = ClusterModel(CLUSTER_B)
        result = simulate_round(
            model, round1_spec(model, cost, workload, 64, mappers, threads)
        )
        print(f"  alignment {label}: {format_duration(result.wall_seconds)}")
    for mode in ("opt", "reg"):
        for disks in (1, 6):
            model = ClusterModel(CLUSTER_B.with_disks(disks))
            result = simulate_round(
                model,
                round3_spec(model, cost, workload, mode, 384, 16, 16),
            )
            print(f"  markdup_{mode} with {disks} disk(s): "
                  f"{format_duration(result.wall_seconds)}")
    print("  rule of thumb (Appendix B.1): ~1 disk per 100 GB shuffled")


if __name__ == "__main__":
    main()
