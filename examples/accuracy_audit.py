"""Accuracy audit: why does the parallel pipeline differ from serial?

A deeper version of the paper's section 4.5.2 study.  Runs the serial
and parallel pipelines over the same synthetic sample, then walks the
full error-diagnosis chain:

* Table 8: D_count / D_impact per pipeline prefix;
* Fig 11(a): where the disagreeing reads live (centromeres, blacklist);
* Fig 11(b): their mapping-quality distribution;
* Fig 11(c): their insert sizes vs the population distribution;
* Tables 9/10: quality of concordant vs pipeline-unique variants;
* the downstream-filter experiment (MAPQ>30 + blacklist).

Usage::

    python examples/accuracy_audit.py
"""

from repro import (
    AlignerConfig,
    ErrorDiagnosisToolkit,
    HaplotypeCallerConfig,
    PipelineSpec,
    ReadSimulationConfig,
    ReferenceIndex,
    ReferenceSimulationConfig,
    compare_alignments,
    run_pipeline,
    run_serial_pipeline,
    simulate_donor,
    simulate_reads,
    simulate_reference,
)
from repro.diagnostics import (
    attribute_regions,
    edge_enrichment,
    enrichment_in_hard_regions,
    filtered_discordance_fraction,
)


def main():
    print("Simulating sample and running both pipelines...")
    reference = simulate_reference(
        ReferenceSimulationConfig(
            contig_lengths={"chr1": 14000, "chr2": 11000}, seed=31
        )
    )
    donor = simulate_donor(reference)
    pairs, _ = simulate_reads(donor, ReadSimulationConfig(coverage=20.0, seed=32))
    index = ReferenceIndex(reference)
    aligner_config = AlignerConfig(seed=9)
    hc_config = HaplotypeCallerConfig(downsample_depth=16)

    spec = PipelineSpec(
        reference=reference, index=index,
        num_fastq_partitions=10, num_reducers=4,
        aligner_config=aligner_config, hc_config=hc_config,
    )
    serial = run_serial_pipeline(spec, pairs)
    parallel = run_pipeline(spec, pairs)

    toolkit = ErrorDiagnosisToolkit(reference, hc_config)
    report = toolkit.diagnose(serial, parallel)

    print("\n-- Table 8: discordant counts and impact --")
    for row in report.rows:
        impact = row.d_impact if row.d_impact is not None else "-"
        print(f"  {row.stage:<18s} D_count={row.d_count:<8.0f} "
              f"weighted={row.weighted_d_count:<8.2f} D_impact={impact}")

    comparison = compare_alignments(serial.alignment, parallel.alignment)
    print(f"\n-- Fig 11(a): region attribution of {comparison.d_count} "
          f"disagreeing reads --")
    attribution = attribute_regions(comparison.discordant, reference)
    print(f"  centromere={attribution.in_centromere} "
          f"blacklist={attribution.in_blacklist} "
          f"duplication={attribution.in_duplication} "
          f"elsewhere={attribution.elsewhere}")
    print(f"  enrichment in hard regions: "
          f"{enrichment_in_hard_regions(comparison.discordant, reference):.1f}x")

    print("\n-- Fig 11(b): MAPQ of disagreeing reads --")
    low = toolkit.low_quality_fraction(comparison)
    print(f"  {100 * low:.1f}% have best MAPQ < 30 "
          f"(they would be filtered by downstream callers)")

    print("\n-- Fig 11(c): insert sizes of disagreeing pairs --")
    disc_edge, pop_edge = edge_enrichment(
        comparison.discordant, serial.alignment
    )
    print(f"  at distribution edges: {100 * disc_edge:.1f}% of discordant "
          f"pairs vs {100 * pop_edge:.1f}% of all pairs")

    print("\n-- Downstream filters (Appendix B.2) --")
    surviving = filtered_discordance_fraction(
        comparison.discordant, reference, comparison.total
    )
    print(f"  raw discordance {comparison.d_count_percent:.3f}% -> "
          f"{100 * surviving:.4f}% after MAPQ>30 + blacklist filters")

    print("\n-- Tables 9/10: concordant vs pipeline-unique variants --")
    for row in report.quality_rows:
        cells = row.as_row()
        print(f"  {row.label:<14s} n={cells['count']:<4d} "
              f"QUAL={cells['QUAL']:<8.1f} MQ={cells['MQ']:<6.1f} "
              f"DP={cells['DP']:<6.1f} AB={cells['AB']:.3f}")
    print("\nConclusion (as in the paper): the pipelines differ only in")
    print("low-confidence calls from hard-to-analyse regions.")


if __name__ == "__main__":
    main()
