"""Structural variant detection: the GASV extension (paper section 2.1).

The paper's pipeline was "currently testing GASV and somatic mutation
algorithms" for large structure variants.  This example plants two
heterozygous 400 bp deletions in the donor genome, runs the full Gesall
pipeline, and detects them from discordant read pairs with GASVLite —
as one more map-only round over the chromosome partitions.

Small-variant callers cannot see these events (their indel reach is
~20 bp); the discordant-pair signature can.

Usage::

    python examples/structural_variants.py
"""

from repro import (
    PipelineSpec,
    ReadSimulationConfig,
    ReferenceIndex,
    ReferenceSimulationConfig,
    UnifiedGenotyperLite,
    run_pipeline,
    simulate_donor,
    simulate_reads,
    simulate_reference,
)
from repro.genome.simulate import DonorSimulationConfig
from repro.variants.structural import DELETION, GASVLite


def main():
    print("Simulating a donor with two 400 bp heterozygous deletions...")
    reference = simulate_reference(
        ReferenceSimulationConfig(
            contig_lengths={"chr1": 20000, "chr2": 16000}, seed=71
        )
    )
    donor = simulate_donor(
        reference,
        DonorSimulationConfig(
            structural_deletions=1, structural_deletion_length=400, seed=72
        ),
    )
    for sv in donor.truth_structural:
        print(f"  planted: DEL {sv.chrom}:{sv.pos}"
              f"-{sv.pos + len(sv.ref) - 1} ({sv.genotype})")

    pairs, _ = simulate_reads(donor, ReadSimulationConfig(coverage=25.0, seed=73))
    print(f"  {len(pairs)} read pairs at 25x")

    print("Running the Gesall parallel pipeline...")
    index = ReferenceIndex(reference)
    result = run_pipeline(
        PipelineSpec(reference=reference, index=index,
                     num_fastq_partitions=8, num_reducers=4),
        pairs,
    )

    print("Small-variant callers cannot reach 400 bp deletions:")
    small_caller = UnifiedGenotyperLite(reference)
    small_calls = small_caller.call(result.deduped)
    big_small_calls = [
        c for c in small_calls if abs(len(c.ref) - len(c.alt)) >= 50
    ]
    print(f"  UnifiedGenotyper: {len(small_calls)} calls, "
          f"{len(big_small_calls)} of them >= 50 bp")

    print("GASVLite over the deduplicated dataset:")
    sv_calls = GASVLite().call(result.deduped)
    for call in sv_calls:
        print(f"  {call.kind} {call.contig}:{call.start}-{call.end} "
              f"support={call.support} ~{call.size_estimate:.0f} bp")

    detected = 0
    for sv in donor.truth_structural:
        hit = any(
            call.kind == DELETION
            and call.overlaps(sv.chrom, sv.pos, sv.pos + len(sv.ref),
                              margin=250)
            for call in sv_calls
        )
        detected += hit
        print(f"  truth DEL at {sv.chrom}:{sv.pos}: "
              f"{'DETECTED' if hit else 'missed'}")
    print(f"\n{detected}/{len(donor.truth_structural)} planted deletions "
          f"recovered from discordant pairs.")


if __name__ == "__main__":
    main()
